(* Tensor algebra, autodiff (against finite differences), layers,
   optimizers and masked categorical distributions. *)

let t_testable = Alcotest.testable Tensor.pp (Tensor.approx_equal ~tol:1e-9)

(* --- Tensor --- *)

let test_tensor_create () =
  let t = Tensor.create [| 2; 3 |] 1.5 in
  Alcotest.(check int) "numel" 6 (Tensor.numel t);
  Alcotest.(check (float 1e-12)) "value" 1.5 (Tensor.get t 5)

let test_tensor_of_array_validates () =
  Alcotest.(check bool) "raises" true
    (match Tensor.of_array [| 2; 2 |] [| 1.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_tensor_matmul_known () =
  let a = Tensor.of_array [| 2; 2 |] [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = Tensor.of_array [| 2; 2 |] [| 5.0; 6.0; 7.0; 8.0 |] in
  Alcotest.(check t_testable) "product"
    (Tensor.of_array [| 2; 2 |] [| 19.0; 22.0; 43.0; 50.0 |])
    (Tensor.matmul a b)

let test_tensor_matmul_transposes_agree () =
  let rng = Util.Rng.create 4 in
  let a = Tensor.init [| 3; 5 |] (fun _ -> Util.Rng.gaussian rng) in
  let b = Tensor.init [| 5; 2 |] (fun _ -> Util.Rng.gaussian rng) in
  let direct = Tensor.matmul a b in
  let via_ta = Tensor.matmul_transpose_a (Tensor.transpose a) b in
  let via_tb = Tensor.matmul_transpose_b a (Tensor.transpose b) in
  Alcotest.(check bool) "a^T path" true (Tensor.approx_equal ~tol:1e-9 direct via_ta);
  Alcotest.(check bool) "b^T path" true (Tensor.approx_equal ~tol:1e-9 direct via_tb)

let test_tensor_add_bias () =
  let x = Tensor.of_array [| 2; 2 |] [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = Tensor.of_array [| 2 |] [| 10.0; 20.0 |] in
  Alcotest.(check t_testable) "bias per row"
    (Tensor.of_array [| 2; 2 |] [| 11.0; 22.0; 13.0; 24.0 |])
    (Tensor.add_bias x b)

let test_tensor_sum_rows_argmax () =
  let x = Tensor.of_array [| 2; 3 |] [| 1.0; 5.0; 2.0; 4.0; 0.0; 3.0 |] in
  Alcotest.(check t_testable) "row sums"
    (Tensor.of_array [| 2 |] [| 8.0; 7.0 |])
    (Tensor.sum_rows x);
  Alcotest.(check int) "argmax row 0" 1 (Tensor.argmax_row x 0);
  Alcotest.(check int) "argmax row 1" 0 (Tensor.argmax_row x 1)

let test_tensor_reshape () =
  let x = Tensor.of_array [| 2; 3 |] [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  let y = Tensor.reshape [| 3; 2 |] x in
  Alcotest.(check (float 1e-12)) "data preserved" 4.0 (Tensor.get2 y 1 1);
  Alcotest.(check bool) "bad reshape raises" true
    (match Tensor.reshape [| 4; 2 |] x with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_tensor_equal_bitwise () =
  (* [equal] is the "same checkpoint" predicate: bitwise, so NaN equals
     itself and 0.0 differs from -0.0 — both the opposite of (=). *)
  let x = Tensor.of_array [| 3 |] [| 1.0; nan; -0.0 |] in
  Alcotest.(check bool) "copy is equal (incl. NaN)" true
    (Tensor.equal x (Tensor.copy x));
  let y = Tensor.of_array [| 3 |] [| 1.0; nan; 0.0 |] in
  Alcotest.(check bool) "-0.0 <> 0.0" false (Tensor.equal x y);
  Alcotest.(check bool) "shape mismatch" false
    (Tensor.equal x (Tensor.zeros [| 2 |]));
  (* approx_equal keeps IEEE semantics: NaN never close to anything. *)
  Alcotest.(check bool) "approx_equal rejects NaN" false
    (Tensor.approx_equal x (Tensor.copy x))

let test_transpose_known () =
  let x = Tensor.of_array [| 2; 3 |] [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  let xt = Tensor.transpose x in
  Alcotest.(check t_testable) "non-square transpose"
    (Tensor.of_array [| 3; 2 |] [| 1.0; 4.0; 2.0; 5.0; 3.0; 6.0 |])
    xt;
  Alcotest.(check bool) "transpose_into matches" true
    (Tensor.equal xt (Tensor.transpose_into ~dst:(Tensor.zeros [| 3; 2 |]) x))

(* Every [_into] kernel against its allocating twin, bit for bit, on
   shapes that hit the tile and unroll remainders of the blocked matmul
   family, across several tile sizes. *)
let test_into_kernels_bit_identical () =
  let saved_block = Tensor.matmul_block () in
  Fun.protect
    ~finally:(fun () -> Tensor.set_matmul_block saved_block)
    (fun () ->
      List.iter
        (fun block ->
          Tensor.set_matmul_block block;
          List.iter
            (fun (m, k, n) ->
              let rng = Util.Rng.create (m + (10 * k) + (100 * n)) in
              let a = Tensor.init [| m; k |] (fun _ -> Util.Rng.gaussian rng) in
              let b = Tensor.init [| k; n |] (fun _ -> Util.Rng.gaussian rng) in
              let ctx op = Printf.sprintf "%s %dx%dx%d block=%d" op m k n block in
              let eq name x y =
                Alcotest.(check bool) (ctx name) true (Tensor.equal x y)
              in
              (* The blocked matmul must equal the naive i-p-j reference. *)
              let naive = Tensor.zeros [| m; n |] in
              for i = 0 to m - 1 do
                for p = 0 to k - 1 do
                  let av = Tensor.get2 a i p in
                  for j = 0 to n - 1 do
                    Tensor.set2 naive i j
                      (Tensor.get2 naive i j +. (av *. Tensor.get2 b p j))
                  done
                done
              done;
              eq "matmul=naive" (Tensor.matmul a b) naive;
              eq "matmul_into"
                (Tensor.matmul_into ~dst:(Tensor.zeros [| m; n |]) a b)
                (Tensor.matmul a b);
              let at = Tensor.transpose a in
              eq "matmul_transpose_a_into"
                (Tensor.matmul_transpose_a_into ~dst:(Tensor.zeros [| m; n |]) at b)
                (Tensor.matmul_transpose_a at b);
              let bt = Tensor.transpose b in
              eq "matmul_transpose_b_into"
                (Tensor.matmul_transpose_b_into ~dst:(Tensor.zeros [| m; n |]) a bt)
                (Tensor.matmul_transpose_b a bt);
              (* addto must equal allocate-then-add, starting from a
                 nonzero accumulator. *)
              let seed = Tensor.init [| m; n |] (fun _ -> Util.Rng.gaussian rng) in
              let addto = Tensor.copy seed in
              Tensor.matmul_transpose_b_addto ~dst:addto a bt;
              let via_alloc = Tensor.copy seed in
              Tensor.add_inplace via_alloc (Tensor.matmul_transpose_b a bt);
              eq "matmul_transpose_b_addto" addto via_alloc)
            [ (1, 1, 1); (3, 5, 2); (5, 7, 3); (17, 13, 9); (33, 65, 17) ])
        [ 4; 8; 48; 64 ]);
  (* Elementwise and reduction twins (tile size irrelevant). *)
  let rng = Util.Rng.create 77 in
  let m = 7 and n = 11 in
  let x = Tensor.init [| m; n |] (fun _ -> Util.Rng.gaussian rng) in
  let y = Tensor.init [| m; n |] (fun _ -> Util.Rng.gaussian rng) in
  let bias = Tensor.init [| n |] (fun _ -> Util.Rng.gaussian rng) in
  let d () = Tensor.zeros [| m; n |] in
  let eq name a b = Alcotest.(check bool) name true (Tensor.equal a b) in
  eq "add_into" (Tensor.add_into ~dst:(d ()) x y) (Tensor.add x y);
  eq "sub_into" (Tensor.sub_into ~dst:(d ()) x y) (Tensor.sub x y);
  eq "mul_into" (Tensor.mul_into ~dst:(d ()) x y) (Tensor.mul x y);
  eq "scale_into" (Tensor.scale_into 1.7 ~dst:(d ()) x) (Tensor.scale 1.7 x);
  eq "relu_into" (Tensor.relu_into ~dst:(d ()) x) (Tensor.relu x);
  eq "add_bias_into" (Tensor.add_bias_into ~dst:(d ()) x bias)
    (Tensor.add_bias x bias);
  eq "slice_cols_into"
    (Tensor.slice_cols_into ~dst:(Tensor.zeros [| m; 4 |]) x ~lo:2 ~hi:6)
    (Tensor.slice_cols x ~lo:2 ~hi:6);
  eq "sum_rows_into" (Tensor.sum_rows_into ~dst:(Tensor.zeros [| m |]) x)
    (Tensor.sum_rows x);
  eq "map_into" (Tensor.map_into exp ~dst:(d ()) x) (Tensor.map exp x);
  eq "map2_into" (Tensor.map2_into Float.min ~dst:(d ()) x y)
    (Tensor.map2 Float.min x y)

(* --- Workspace arena --- *)

let test_workspace_reuse () =
  let ws = Tensor.Workspace.create () in
  let a = Tensor.Workspace.get ws [| 4; 4 |] in
  let b = Tensor.Workspace.get ws [| 8 |] in
  Tensor.fill_inplace a 1.0;
  Tensor.fill_inplace b 2.0;
  Alcotest.(check int) "two slots" 2 (Tensor.Workspace.slots ws);
  Alcotest.(check int) "two reallocs" 2 (Tensor.Workspace.reallocs ws);
  Tensor.Workspace.reset ws;
  (* Same shape sequence: same buffers, no allocation. *)
  let a' = Tensor.Workspace.get ws [| 4; 4 |] in
  let b' = Tensor.Workspace.get ws [| 8 |] in
  Alcotest.(check int) "no new slots" 2 (Tensor.Workspace.slots ws);
  Alcotest.(check int) "no new reallocs" 2 (Tensor.Workspace.reallocs ws);
  Alcotest.(check (float 0.0)) "buffer reused" 1.0 (Tensor.get a' 0);
  Alcotest.(check (float 0.0)) "buffer reused (2)" 2.0 (Tensor.get b' 0);
  Alcotest.(check int) "grabs counted" 4 (Tensor.Workspace.grabs ws)

let test_workspace_prefix_view_and_growth () =
  let ws = Tensor.Workspace.create () in
  ignore (Tensor.Workspace.get ws [| 6; 6 |]);
  Tensor.Workspace.reset ws;
  (* A smaller request reuses the slot as a prefix view... *)
  let small = Tensor.Workspace.get ws [| 2; 3 |] in
  Alcotest.(check int) "prefix view, no realloc" 1 (Tensor.Workspace.reallocs ws);
  Alcotest.(check int) "requested shape" 6 (Tensor.numel small);
  Tensor.Workspace.reset ws;
  (* ... a bigger one grows the slot. *)
  let big = Tensor.Workspace.get ws [| 9; 9 |] in
  Alcotest.(check int) "growth reallocates" 2 (Tensor.Workspace.reallocs ws);
  Alcotest.(check int) "grown shape" 81 (Tensor.numel big);
  Alcotest.(check bool) "live bytes cover capacity" true
    (Tensor.Workspace.live_bytes ws >= 81 * 8)

let test_tape_workspace_grads_bit_identical () =
  (* An arena-backed tape must produce bit-identical gradients to a
     plain allocating tape, across repeated reuse of the same arena. *)
  let rng = Util.Rng.create 31 in
  let mlp = Layers.mlp rng ~dims:[ 5; 7; 3 ] "net" in
  let params = Layers.mlp_params mlp in
  let x = Tensor.init [| 4; 5 |] (fun _ -> Util.Rng.gaussian rng) in
  let run tape =
    let xo = Autodiff.const tape x in
    let y = Autodiff.relu tape (Layers.forward_mlp tape mlp xo) in
    Autodiff.backward tape (Autodiff.mean_all tape (Autodiff.square tape y));
    List.map (fun p -> Tensor.copy p.Autodiff.Param.grad) params
  in
  List.iter Autodiff.Param.zero_grad params;
  let plain = run (Autodiff.Tape.create ()) in
  let ws = Tensor.Workspace.create () in
  for round = 1 to 3 do
    List.iter Autodiff.Param.zero_grad params;
    let with_ws = run (Autodiff.Tape.create ~ws ()) in
    List.iteri
      (fun i g ->
        Alcotest.(check bool)
          (Printf.sprintf "grad %d bit-identical (round %d)" i round)
          true
          (Tensor.equal g (List.nth plain i)))
      with_ws
  done

(* --- Autodiff vs finite differences --- *)

let finite_diff_check ~build ~params ~eps ~tol =
  List.iter Autodiff.Param.zero_grad params;
  let tape, loss = build () in
  Autodiff.backward tape loss;
  let analytic = List.map (fun p -> Tensor.copy p.Autodiff.Param.grad) params in
  List.iteri
    (fun pi p ->
      let d = p.Autodiff.Param.data in
      for i = 0 to Tensor.numel d - 1 do
        let orig = Tensor.get d i in
        Tensor.set d i (orig +. eps);
        let _, l1 = build () in
        Tensor.set d i (orig -. eps);
        let _, l2 = build () in
        Tensor.set d i orig;
        let num =
          (Tensor.get (Autodiff.value l1) 0 -. Tensor.get (Autodiff.value l2) 0)
          /. (2.0 *. eps)
        in
        let ana = Tensor.get (List.nth analytic pi) i in
        if Float.abs (num -. ana) > tol *. (1.0 +. Float.abs num) then
          Alcotest.failf "grad mismatch param %d idx %d: %g vs %g" pi i ana num
      done)
    params

let test_grad_linear_relu () =
  let rng = Util.Rng.create 21 in
  let layer = Layers.linear rng ~in_dim:4 ~out_dim:3 "l" in
  let x = Tensor.init [| 2; 4 |] (fun _ -> Util.Rng.gaussian rng) in
  finite_diff_check
    ~build:(fun () ->
      let tape = Autodiff.Tape.create () in
      let xo = Autodiff.const tape x in
      let y = Autodiff.relu tape (Layers.forward_linear tape layer xo) in
      (tape, Autodiff.mean_all tape (Autodiff.square tape y)))
    ~params:(Layers.linear_params layer) ~eps:1e-5 ~tol:1e-5

let test_grad_log_softmax_gather () =
  let rng = Util.Rng.create 22 in
  let layer = Layers.linear rng ~in_dim:3 ~out_dim:4 "l" in
  let x = Tensor.init [| 3; 3 |] (fun _ -> Util.Rng.gaussian rng) in
  finite_diff_check
    ~build:(fun () ->
      let tape = Autodiff.Tape.create () in
      let xo = Autodiff.const tape x in
      let logits = Layers.forward_linear tape layer xo in
      let lp = Autodiff.log_softmax tape logits in
      let picked = Autodiff.gather_cols tape lp [| 0; 3; 2 |] in
      (tape, Autodiff.mean_all tape picked))
    ~params:(Layers.linear_params layer) ~eps:1e-5 ~tol:1e-5

let test_grad_ppo_style_loss () =
  let rng = Util.Rng.create 23 in
  let mlp = Layers.mlp rng ~dims:[ 4; 8; 3 ] "net" in
  let x = Tensor.init [| 4; 4 |] (fun _ -> Util.Rng.gaussian rng) in
  let adv = Tensor.init [| 4 |] (fun _ -> Util.Rng.gaussian rng) in
  let old_lp = Tensor.init [| 4 |] (fun _ -> -1.0 -. Util.Rng.uniform rng) in
  finite_diff_check
    ~build:(fun () ->
      let tape = Autodiff.Tape.create () in
      let xo = Autodiff.const tape x in
      let lp_all = Autodiff.log_softmax tape (Layers.forward_mlp tape mlp xo) in
      let lp = Autodiff.gather_cols tape lp_all [| 0; 1; 2; 0 |] in
      let ratio = Autodiff.exp_ tape (Autodiff.sub tape lp (Autodiff.const tape old_lp)) in
      let a = Autodiff.const tape adv in
      let clipped = Autodiff.clamp tape ~lo:0.8 ~hi:1.2 ratio in
      let surr =
        Autodiff.min_ tape (Autodiff.mul tape ratio a) (Autodiff.mul tape clipped a)
      in
      (tape, Autodiff.neg tape (Autodiff.mean_all tape surr)))
    ~params:(Layers.mlp_params mlp) ~eps:1e-5 ~tol:1e-4

let test_grad_slice_sum_rows () =
  let rng = Util.Rng.create 24 in
  let layer = Layers.linear rng ~in_dim:3 ~out_dim:6 "l" in
  let x = Tensor.init [| 2; 3 |] (fun _ -> Util.Rng.gaussian rng) in
  finite_diff_check
    ~build:(fun () ->
      let tape = Autodiff.Tape.create () in
      let xo = Autodiff.const tape x in
      let y = Layers.forward_linear tape layer xo in
      let left = Autodiff.slice_cols tape y ~lo:0 ~hi:3 in
      let right = Autodiff.slice_cols tape y ~lo:3 ~hi:6 in
      let h = Autodiff.mul tape left (Autodiff.exp_ tape right) in
      (tape, Autodiff.mean_all tape (Autodiff.sum_rows tape h)))
    ~params:(Layers.linear_params layer) ~eps:1e-5 ~tol:1e-4

let test_backward_rejects_non_scalar () =
  let tape = Autodiff.Tape.create () in
  let x = Autodiff.const tape (Tensor.zeros [| 2 |]) in
  Alcotest.(check bool) "raises" true
    (match Autodiff.backward tape x with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_param_grad_accumulates () =
  let p = Autodiff.Param.create "p" (Tensor.ones [| 2 |]) in
  let run () =
    let tape = Autodiff.Tape.create () in
    let n = Autodiff.of_param tape p in
    Autodiff.backward tape (Autodiff.sum_all tape n)
  in
  run ();
  run ();
  Alcotest.(check (float 1e-12)) "accumulated twice" 2.0 (Tensor.get p.Autodiff.Param.grad 0);
  Autodiff.Param.zero_grad p;
  Alcotest.(check (float 1e-12)) "zeroed" 0.0 (Tensor.get p.Autodiff.Param.grad 0)

(* --- optimizers --- *)

let test_sgd_descends_quadratic () =
  let p = Autodiff.Param.create "x" (Tensor.of_array [| 1 |] [| 5.0 |]) in
  let opt = Optim.sgd ~lr:0.1 [ p ] in
  for _ = 1 to 100 do
    Optim.zero_grad opt;
    let tape = Autodiff.Tape.create () in
    let x = Autodiff.of_param tape p in
    Autodiff.backward tape (Autodiff.sum_all tape (Autodiff.square tape x));
    Optim.step opt
  done;
  Alcotest.(check bool) "near zero" true (Float.abs (Tensor.get p.Autodiff.Param.data 0) < 1e-3)

let test_adam_descends_rosenbrock_1d () =
  (* minimize (x - 3)^2 with Adam *)
  let p = Autodiff.Param.create "x" (Tensor.of_array [| 1 |] [| -2.0 |]) in
  let opt = Optim.adam ~lr:0.1 [ p ] in
  for _ = 1 to 500 do
    Optim.zero_grad opt;
    let tape = Autodiff.Tape.create () in
    let x = Autodiff.of_param tape p in
    let diff = Autodiff.add_scalar tape (-3.0) x in
    Autodiff.backward tape (Autodiff.sum_all tape (Autodiff.square tape diff));
    Optim.step opt
  done;
  Alcotest.(check bool) "converges to 3" true
    (Float.abs (Tensor.get p.Autodiff.Param.data 0 -. 3.0) < 1e-2)

let test_clip_grad_norm () =
  let p = Autodiff.Param.create "p" (Tensor.zeros [| 4 |]) in
  Tensor.fill_inplace p.Autodiff.Param.grad 3.0;
  (* norm = 6 *)
  let opt = Optim.sgd ~lr:1.0 [ p ] in
  let norm = Optim.clip_grad_norm opt 1.5 in
  Alcotest.(check (float 1e-9)) "reported pre-clip norm" 6.0 norm;
  let new_norm =
    sqrt
      (Array.fold_left
         (fun acc g -> acc +. (g *. g))
         0.0
         (Tensor.to_array p.Autodiff.Param.grad))
  in
  Alcotest.(check (float 1e-9)) "clipped to max" 1.5 new_norm

(* --- distributions --- *)

let test_masked_log_probs_excludes () =
  let tape = Autodiff.Tape.create () in
  let logits = Autodiff.const tape (Tensor.zeros [| 1; 4 |]) in
  let lp =
    Distributions.masked_log_probs tape logits
      ~mask:[| [| true; false; true; false |] |]
  in
  let v = Autodiff.value lp in
  Alcotest.(check bool) "masked ~ -inf" true (Tensor.get2 v 0 1 < -20.0);
  Alcotest.(check (float 1e-6)) "valid uniform" (log 0.5) (Tensor.get2 v 0 0)

let test_masked_log_probs_rejects_empty () =
  let tape = Autodiff.Tape.create () in
  let logits = Autodiff.const tape (Tensor.zeros [| 1; 2 |]) in
  Alcotest.(check bool) "raises" true
    (match Distributions.masked_log_probs tape logits ~mask:[| [| false; false |] |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sample_respects_mask () =
  let rng = Util.Rng.create 8 in
  let tape = Autodiff.Tape.create () in
  let logits = Autodiff.const tape (Tensor.zeros [| 1; 5 |]) in
  let lp =
    Distributions.masked_log_probs tape logits
      ~mask:[| [| false; true; false; true; false |] |]
  in
  for _ = 1 to 200 do
    let c = Distributions.sample rng (Autodiff.value lp) 0 in
    Alcotest.(check bool) "only unmasked" true (c = 1 || c = 3)
  done

let test_sample_distribution_matches () =
  let rng = Util.Rng.create 9 in
  let tape = Autodiff.Tape.create () in
  (* logits ln(1), ln(3): probabilities 0.25 / 0.75 *)
  let logits = Autodiff.const tape (Tensor.of_array [| 1; 2 |] [| 0.0; log 3.0 |]) in
  let lp = Distributions.masked_log_probs tape logits ~mask:[| [| true; true |] |] in
  let counts = [| 0; 0 |] in
  let n = 20_000 in
  for _ = 1 to n do
    let c = Distributions.sample rng (Autodiff.value lp) 0 in
    counts.(c) <- counts.(c) + 1
  done;
  let p1 = float_of_int counts.(1) /. float_of_int n in
  Alcotest.(check bool) "frequency near 0.75" true (Float.abs (p1 -. 0.75) < 0.02)

let test_entropy_uniform_max () =
  let tape = Autodiff.Tape.create () in
  let uniform = Autodiff.const tape (Tensor.zeros [| 1; 4 |]) in
  let lp_u =
    Distributions.masked_log_probs tape uniform ~mask:[| Array.make 4 true |]
  in
  let h_u = Tensor.get (Autodiff.value (Distributions.entropy tape lp_u)) 0 in
  Alcotest.(check (float 1e-6)) "ln 4" (log 4.0) h_u;
  let peaked =
    Autodiff.const tape (Tensor.of_array [| 1; 4 |] [| 50.0; 0.0; 0.0; 0.0 |])
  in
  let lp_p =
    Distributions.masked_log_probs tape peaked ~mask:[| Array.make 4 true |]
  in
  let h_p = Tensor.get (Autodiff.value (Distributions.entropy tape lp_p)) 0 in
  Alcotest.(check bool) "peaked lower" true (h_p < h_u)

let qcheck_log_probs_normalized =
  QCheck.Test.make ~name:"masked log-probs sum to 1 over valid entries" ~count:100
    QCheck.(pair (int_range 0 999) (int_range 2 8))
    (fun (seed, k) ->
      let rng = Util.Rng.create seed in
      let tape = Autodiff.Tape.create () in
      let logits =
        Autodiff.const tape (Tensor.init [| 1; k |] (fun _ -> Util.Rng.gaussian rng))
      in
      let mask = Array.init k (fun i -> i = 0 || Util.Rng.bool rng) in
      let lp = Distributions.masked_log_probs tape logits ~mask:[| mask |] in
      let total = ref 0.0 in
      for j = 0 to k - 1 do
        total := !total +. exp (Tensor.get2 (Autodiff.value lp) 0 j)
      done;
      Float.abs (!total -. 1.0) < 1e-6)

let suite =
  [
    Alcotest.test_case "tensor create" `Quick test_tensor_create;
    Alcotest.test_case "of_array validates" `Quick test_tensor_of_array_validates;
    Alcotest.test_case "matmul known" `Quick test_tensor_matmul_known;
    Alcotest.test_case "matmul transposes agree" `Quick test_tensor_matmul_transposes_agree;
    Alcotest.test_case "add_bias" `Quick test_tensor_add_bias;
    Alcotest.test_case "sum_rows/argmax" `Quick test_tensor_sum_rows_argmax;
    Alcotest.test_case "reshape" `Quick test_tensor_reshape;
    Alcotest.test_case "equal is bitwise" `Quick test_tensor_equal_bitwise;
    Alcotest.test_case "transpose known" `Quick test_transpose_known;
    Alcotest.test_case "into kernels bit-identical" `Quick
      test_into_kernels_bit_identical;
    Alcotest.test_case "workspace reuse" `Quick test_workspace_reuse;
    Alcotest.test_case "workspace prefix view/growth" `Quick
      test_workspace_prefix_view_and_growth;
    Alcotest.test_case "tape workspace grads bit-identical" `Quick
      test_tape_workspace_grads_bit_identical;
    Alcotest.test_case "grad: linear+relu" `Quick test_grad_linear_relu;
    Alcotest.test_case "grad: log_softmax+gather" `Quick test_grad_log_softmax_gather;
    Alcotest.test_case "grad: PPO-style loss" `Quick test_grad_ppo_style_loss;
    Alcotest.test_case "grad: slice+sum_rows" `Quick test_grad_slice_sum_rows;
    Alcotest.test_case "backward rejects non-scalar" `Quick test_backward_rejects_non_scalar;
    Alcotest.test_case "param grad accumulates" `Quick test_param_grad_accumulates;
    Alcotest.test_case "sgd descends" `Quick test_sgd_descends_quadratic;
    Alcotest.test_case "adam converges" `Quick test_adam_descends_rosenbrock_1d;
    Alcotest.test_case "clip grad norm" `Quick test_clip_grad_norm;
    Alcotest.test_case "mask excludes" `Quick test_masked_log_probs_excludes;
    Alcotest.test_case "mask rejects empty" `Quick test_masked_log_probs_rejects_empty;
    Alcotest.test_case "sample respects mask" `Quick test_sample_respects_mask;
    Alcotest.test_case "sample distribution" `Quick test_sample_distribution_matches;
    Alcotest.test_case "entropy uniform max" `Quick test_entropy_uniform_max;
    QCheck_alcotest.to_alcotest qcheck_log_probs_normalized;
  ]
