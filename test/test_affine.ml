(* Tests for the affine expression/map machinery. *)

let expr_testable =
  Alcotest.testable Affine.pp_expr Affine.equal_expr

let map_testable = Alcotest.testable Affine.pp_map Affine.equal_map

let test_expr_builds () =
  let e = Affine.expr ~const:3 4 [ (0, 2); (2, 1) ] in
  Alcotest.(check (array int)) "coeffs" [| 2; 0; 1; 0 |] e.Affine.coeffs;
  Alcotest.(check int) "const" 3 e.Affine.const

let test_expr_merges_duplicate_dims () =
  let e = Affine.expr 3 [ (1, 2); (1, 3) ] in
  Alcotest.(check (array int)) "merged" [| 0; 5; 0 |] e.Affine.coeffs

let test_expr_rejects_bad_dim () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Affine.expr: dim out of range") (fun () ->
      ignore (Affine.expr 2 [ (2, 1) ]))

let test_eval_expr () =
  let e = Affine.expr ~const:1 3 [ (0, 2); (2, -1) ] in
  Alcotest.(check int) "2*5 - 7 + 1" 4 (Affine.eval_expr e [| 5; 9; 7 |])

let test_add_scale () =
  let a = Affine.expr ~const:1 2 [ (0, 1) ] in
  let b = Affine.expr ~const:2 2 [ (1, 3) ] in
  let s = Affine.add_expr (Affine.scale 2 a) b in
  Alcotest.(check expr_testable) "2a + b"
    (Affine.expr ~const:4 2 [ (0, 2); (1, 3) ])
    s

let test_identity_map () =
  let m = Affine.identity_map 3 in
  Alcotest.(check (array int)) "identity eval" [| 4; 5; 6 |]
    (Affine.eval_map m [| 4; 5; 6 |])

let test_projection_map () =
  let m = Affine.projection_map 3 [ 2; 0 ] in
  Alcotest.(check (array int)) "projection" [| 6; 4 |]
    (Affine.eval_map m [| 4; 5; 6 |])

let test_permute_dims () =
  (* Map (d0, d1) -> (d0 + 2*d1). Permutation [1;0] renames: new dim 0 is
     old dim 1. New map should be (d0, d1) -> (d1 + 2*d0). *)
  let m = Affine.map_of_exprs 2 [ Affine.expr 2 [ (0, 1); (1, 2) ] ] in
  let p = Affine.permute_dims [| 1; 0 |] m in
  Alcotest.(check map_testable) "permuted"
    (Affine.map_of_exprs 2 [ Affine.expr 2 [ (0, 2); (1, 1) ] ])
    p

let test_substitute () =
  (* e = 2*d0 + d1 + 1; substitute d0 := 4*e0 + e1, d1 := e2.
     Result: 8*e0 + 2*e1 + e2 + 1. *)
  let e = Affine.expr ~const:1 2 [ (0, 2); (1, 1) ] in
  let subst = [| Affine.expr 3 [ (0, 4); (1, 1) ]; Affine.dim 3 2 |] in
  Alcotest.(check expr_testable) "substituted"
    (Affine.expr ~const:1 3 [ (0, 8); (1, 2); (2, 1) ])
    (Affine.substitute e subst)

let test_substitute_identity_roundtrip () =
  let e = Affine.expr ~const:5 3 [ (0, 1); (1, 7); (2, -2) ] in
  let subst = Array.init 3 (fun d -> Affine.dim 3 d) in
  Alcotest.(check expr_testable) "identity subst" e (Affine.substitute e subst)

let test_uses_dim () =
  let m = Affine.projection_map 3 [ 0; 2 ] in
  Alcotest.(check bool) "uses d0" true (Affine.uses_dim m 0);
  Alcotest.(check bool) "skips d1" false (Affine.uses_dim m 1);
  Alcotest.(check bool) "uses d2" true (Affine.uses_dim m 2)

let test_innermost_stride () =
  (* A[d0, d2] into a 16x8 array: stride of d2 is 1, of d0 is 8, of d1 0. *)
  let m = Affine.projection_map 3 [ 0; 2 ] in
  Alcotest.(check int) "d2 stride" 1 (Affine.innermost_stride m [| 16; 8 |] 2);
  Alcotest.(check int) "d0 stride" 8 (Affine.innermost_stride m [| 16; 8 |] 0);
  Alcotest.(check int) "d1 stride" 0 (Affine.innermost_stride m [| 16; 8 |] 1)

let test_to_matrix () =
  let m =
    Affine.map_of_exprs 2
      [ Affine.expr ~const:3 2 [ (0, 1) ]; Affine.expr 2 [ (1, 2) ] ]
  in
  Alcotest.(check (array (array int)))
    "figure-2 style matrix"
    [| [| 1; 0; 3 |]; [| 0; 2; 0 |] |]
    (Affine.to_matrix m)

let qcheck_eval_linear =
  (* eval(a + b) = eval a + eval b pointwise. *)
  let gen_expr =
    QCheck.Gen.(
      let* coeffs = array_size (return 3) (int_range (-4) 4) in
      let* const = int_range (-5) 5 in
      return { Affine.coeffs; const })
  in
  QCheck.Test.make ~name:"affine eval is linear in exprs" ~count:300
    (QCheck.make
       QCheck.Gen.(
         triple gen_expr gen_expr (array_size (return 3) (int_range 0 9))))
    (fun (a, b, pt) ->
      Affine.eval_expr (Affine.add_expr a b) pt
      = Affine.eval_expr a pt + Affine.eval_expr b pt)

let qcheck_permute_eval =
  (* Evaluating a permuted map at x equals evaluating the original at the
     permuted point. *)
  QCheck.Test.make ~name:"permute_dims commutes with eval" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* pt = array_size (return 3) (int_range 0 9) in
         let* perm_l = shuffle_l [ 0; 1; 2 ] in
         return (pt, Array.of_list perm_l)))
    (fun (pt, perm) ->
      let m =
        Affine.map_of_exprs 3
          [ Affine.expr ~const:1 3 [ (0, 1); (1, 2) ]; Affine.dim 3 2 ]
      in
      let permuted = Affine.permute_dims perm m in
      (* new position i holds old iterator perm.(i), so the original map
         must be evaluated at the scattered point x with
         x.(perm.(i)) = pt.(i) *)
      let scattered = Array.make 3 0 in
      Array.iteri (fun i p -> scattered.(p) <- pt.(i)) perm;
      Affine.eval_map m scattered = Affine.eval_map permuted pt)

let suite =
  [
    Alcotest.test_case "expr builds" `Quick test_expr_builds;
    Alcotest.test_case "expr merges duplicates" `Quick test_expr_merges_duplicate_dims;
    Alcotest.test_case "expr rejects bad dim" `Quick test_expr_rejects_bad_dim;
    Alcotest.test_case "eval expr" `Quick test_eval_expr;
    Alcotest.test_case "add/scale" `Quick test_add_scale;
    Alcotest.test_case "identity map" `Quick test_identity_map;
    Alcotest.test_case "projection map" `Quick test_projection_map;
    Alcotest.test_case "permute dims" `Quick test_permute_dims;
    Alcotest.test_case "substitute" `Quick test_substitute;
    Alcotest.test_case "substitute identity" `Quick test_substitute_identity_roundtrip;
    Alcotest.test_case "uses_dim" `Quick test_uses_dim;
    Alcotest.test_case "innermost stride" `Quick test_innermost_stride;
    Alcotest.test_case "to_matrix" `Quick test_to_matrix;
    QCheck_alcotest.to_alcotest qcheck_eval_linear;
    QCheck_alcotest.to_alcotest qcheck_permute_eval;
  ]
