(* The learned cost model extension (§6.1 future work). *)

let cfg = Env_config.default

let small_ops =
  [|
    Linalg.matmul ~m:256 ~n:256 ~k:256 ();
    Linalg.matmul ~m:512 ~n:128 ~k:256 ();
    Linalg.add [| 512; 512 |];
    Linalg.relu [| 1024; 256 |];
  |]

let test_collect_shapes () =
  let rng = Util.Rng.create 5 in
  let ev = Evaluator.create () in
  let data = Learned_cost.collect ~samples:32 rng cfg ev ~ops:small_ops in
  Alcotest.(check int) "sample count" 32 (Array.length data);
  Array.iter
    (fun (e : Learned_cost.example) ->
      Alcotest.(check int) "feature length" (Env_config.obs_dim cfg)
        (Array.length e.Learned_cost.features);
      Alcotest.(check bool) "finite target" true
        (Float.is_finite e.Learned_cost.log_speedup))
    data

let test_fit_reduces_loss () =
  let rng = Util.Rng.create 6 in
  let ev = Evaluator.create () in
  let data = Learned_cost.collect ~samples:128 rng cfg ev ~ops:small_ops in
  let model = Learned_cost.create ~hidden:32 ~layers:2 rng cfg in
  let report = Learned_cost.fit ~epochs:30 model data in
  Alcotest.(check bool)
    (Printf.sprintf "loss %f -> %f" report.Learned_cost.initial_loss
       report.Learned_cost.final_loss)
    true
    (report.Learned_cost.final_loss < report.Learned_cost.initial_loss /. 2.0)

let test_generalizes_by_rank () =
  (* Train on one split, require positive rank correlation on held-out
     states — enough for the model to guide a search. *)
  let rng = Util.Rng.create 7 in
  let ev = Evaluator.create () in
  let train = Learned_cost.collect ~samples:256 rng cfg ev ~ops:small_ops in
  let test = Learned_cost.collect ~samples:64 rng cfg ev ~ops:small_ops in
  let model = Learned_cost.create ~hidden:48 ~layers:2 rng cfg in
  ignore (Learned_cost.fit ~epochs:40 model train);
  let rho = Learned_cost.rank_correlation model test in
  Alcotest.(check bool)
    (Printf.sprintf "rank correlation %.3f > 0.5" rho)
    true (rho > 0.5)

let test_predict_speedup_positive () =
  let rng = Util.Rng.create 8 in
  let model = Learned_cost.create ~hidden:16 ~layers:1 rng cfg in
  let st = Sched_state.init small_ops.(0) in
  Alcotest.(check bool) "positive" true (Learned_cost.predict_speedup model st > 0.0)

let test_fit_rejects_empty () =
  let rng = Util.Rng.create 9 in
  let model = Learned_cost.create ~hidden:8 ~layers:1 rng cfg in
  Alcotest.(check bool) "raises" true
    (match Learned_cost.fit model [||] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "collect shapes" `Quick test_collect_shapes;
    Alcotest.test_case "fit reduces loss" `Slow test_fit_reduces_loss;
    Alcotest.test_case "generalizes by rank" `Slow test_generalizes_by_rank;
    Alcotest.test_case "predict positive" `Quick test_predict_speedup_positive;
    Alcotest.test_case "fit rejects empty" `Quick test_fit_rejects_empty;
  ]
