(* Odds and ends: printer float fidelity, loop-nest helpers, tempered
   sampling, autodiff op corners. *)

let test_printer_awkward_constants () =
  (* A generic op whose body carries a non-terminating decimal constant
     must survive print -> parse -> print exactly. *)
  let op =
    Linalg.generic ~name:"scaled" ~domain:[| 6 |]
      ~iter_kinds:[| Linalg.Parallel_iter |]
      ~inputs:
        [ { Linalg.name = "x"; shape = [| 6 |]; map = Affine.identity_map 1 } ]
      ~output:{ Linalg.name = "y"; shape = [| 6 |]; map = Affine.identity_map 1 }
      ~body:(Linalg.Binop (Linalg.Mul, Linalg.Input 0, Linalg.Const (1.0 /. 3.0)))
      ()
  in
  let nest = Lower.to_loop_nest op in
  let text = Ir_printer.to_string nest in
  let reparsed = Ir_parser.parse text in
  Alcotest.(check string) "fixpoint" text (Ir_printer.to_string reparsed);
  (* and it still computes x/3 *)
  let out =
    Interp.output_of reparsed
      (Interp.run reparsed ~inputs:[ ("x", [| 3.0; 6.0; 9.0; 12.0; 15.0; 18.0 |]) ])
  in
  Alcotest.(check (array (float 1e-12))) "x/3" [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] out

let test_loop_nest_helpers () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  let renamed = Loop_nest.rename "other" nest in
  Alcotest.(check string) "renamed" "other" renamed.Loop_nest.name;
  Alcotest.(check bool) "domain equality check" true
    (Loop_nest.equal_semantics_domain nest renamed);
  let shifted =
    Loop_nest.map_body_exprs
      (fun (e : Affine.expr) -> { e with Affine.const = e.Affine.const + 0 })
      nest
  in
  Alcotest.(check bool) "identity rewrite keeps validity" true
    (Loop_nest.validate shifted = Ok ());
  Alcotest.(check bool) "buffer_shape raises on unknown" true
    (match Loop_nest.buffer_shape nest "nope" with
    | exception Not_found -> true
    | _ -> false)

let test_tempered_sampling_limits () =
  let rng = Util.Rng.create 99 in
  let lp =
    (* probabilities 0.7 / 0.3 *)
    Tensor.of_array [| 1; 2 |] [| log 0.7; log 0.3 |]
  in
  (* tiny temperature ~ argmax *)
  for _ = 1 to 50 do
    Alcotest.(check int) "T->0 is argmax" 0
      (Distributions.sample_tempered rng lp 0 ~temperature:0.05)
  done;
  (* large temperature ~ uniform *)
  let counts = [| 0; 0 |] in
  let n = 10_000 in
  for _ = 1 to n do
    let c = Distributions.sample_tempered rng lp 0 ~temperature:50.0 in
    counts.(c) <- counts.(c) + 1
  done;
  let p0 = float_of_int counts.(0) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "T->inf is uniform (p0 = %.3f)" p0)
    true
    (Float.abs (p0 -. 0.5) < 0.03);
  Alcotest.(check bool) "T <= 0 rejected" true
    (match Distributions.sample_tempered rng lp 0 ~temperature:0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_autodiff_clamp_min_boundaries () =
  let tape = Autodiff.Tape.create () in
  let x = Autodiff.const tape (Tensor.of_array [| 3 |] [| -1.0; 0.5; 2.0 |]) in
  let c = Autodiff.clamp tape ~lo:0.0 ~hi:1.0 x in
  Alcotest.(check (array (float 1e-12))) "clamped"
    [| 0.0; 0.5; 1.0 |]
    (Tensor.to_array (Autodiff.value c));
  let y = Autodiff.const tape (Tensor.of_array [| 3 |] [| 0.0; 1.0; 1.0 |]) in
  let m = Autodiff.min_ tape c y in
  Alcotest.(check (array (float 1e-12))) "elementwise min"
    [| 0.0; 0.5; 1.0 |]
    (Tensor.to_array (Autodiff.value m))

let test_tensor_shape_errors () =
  let a = Tensor.zeros [| 2; 3 |] in
  let b = Tensor.zeros [| 2; 3 |] in
  Alcotest.(check bool) "matmul inner mismatch raises" true
    (match Tensor.matmul a b with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "map2 shape mismatch raises" true
    (match Tensor.map2 ( +. ) a (Tensor.zeros [| 3; 2 |]) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_schedule_state_point_band_after_everything () =
  (* After a deep schedule the point band still has one loop per op dim
     in some order. *)
  let op = Test_helpers.small_conv () in
  let st =
    Result.get_ok
      (Sched_state.apply_all op
         [
           Schedule.Tile [| 0; 3; 2; 2; 0; 0; 0 |];
           Schedule.Swap 1;
           Schedule.Parallelize [| 2; 0; 0; 0; 0; 0; 0 |];
           Schedule.Swap 4;
         ])
  in
  let band = Loop_transforms.point_band st.Sched_state.nest in
  Alcotest.(check int) "seven point loops" 7 (Array.length band);
  let origins =
    List.sort compare
      (Array.to_list (Array.map (fun (l : Loop_nest.loop) -> l.Loop_nest.origin) band))
  in
  Alcotest.(check (list int)) "origins cover all dims" [ 0; 1; 2; 3; 4; 5; 6 ] origins

let test_evaluator_explored_monotone () =
  let ev = Evaluator.create () in
  let op = Test_helpers.small_matmul () in
  let before = Evaluator.explored ev in
  ignore (Evaluator.schedule_speedup ev op [ Schedule.Vectorize ]);
  Alcotest.(check int) "incremented" (before + 1) (Evaluator.explored ev)

let suite =
  [
    Alcotest.test_case "printer awkward constants" `Quick test_printer_awkward_constants;
    Alcotest.test_case "loop nest helpers" `Quick test_loop_nest_helpers;
    Alcotest.test_case "tempered sampling limits" `Quick test_tempered_sampling_limits;
    Alcotest.test_case "clamp/min boundaries" `Quick test_autodiff_clamp_min_boundaries;
    Alcotest.test_case "tensor shape errors" `Quick test_tensor_shape_errors;
    Alcotest.test_case "point band after deep schedule" `Quick
      test_schedule_state_point_band_after_everything;
    Alcotest.test_case "evaluator explored monotone" `Quick
      test_evaluator_explored_monotone;
  ]
