(* The parallel rollout engine's contracts: pure stream derivation,
   bit-reproducibility of seeded training across --jobs values
   (iteration stats AND checkpoint bytes), batched inference matching
   per-state inference draw for draw, the sharded cache under a
   multi-domain hammer, and the domain pool itself. *)

(* ------------------------------------------------------------------ *)
(* Util.Rng.derive                                                     *)

let test_derive_pure () =
  let a = Util.Rng.derive 42 ~stream:7 in
  let b = Util.Rng.derive 42 ~stream:7 in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Util.Rng.int64 a) (Util.Rng.int64 b)
  done

let test_derive_streams_decorrelated () =
  (* Adjacent stream ids (the per-episode pattern) must not collide on
     their first outputs; also cover the reserved negative ids. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun stream ->
      let v = Util.Rng.int64 (Util.Rng.derive 42 ~stream) in
      Alcotest.(check bool)
        (Printf.sprintf "stream %d distinct" stream)
        false (Hashtbl.mem seen v);
      Hashtbl.add seen v ())
    [ -2; -1; 0; 1; 2; 3; 4; 5; 6; 7 ]

(* ------------------------------------------------------------------ *)
(* Seeded training is identical for any jobs value                     *)

let small_ops = [| Linalg.matmul ~m:8 ~n:12 ~k:16 (); Linalg.add [| 32; 32 |] |]

let stats_key (s : Trainer.iteration_stats) =
  Printf.sprintf "%d %.17g %.17g %.17g %.17g %d %d %d" s.Trainer.iteration
    s.Trainer.mean_episode_return s.Trainer.mean_final_speedup
    s.Trainer.best_speedup s.Trainer.measurement_seconds
    s.Trainer.schedules_explored s.Trainer.degraded_measurements
    s.Trainer.episodes

let noisy_faulty_env () =
  let cfg = Env_config.default in
  let evaluator = Evaluator.create ~noise:0.05 ~noise_seed:11 () in
  let faults = Faults.create ~config:(Faults.flaky ~rate:0.15 ()) ~seed:8 () in
  let robust = Robust_evaluator.create ~faults evaluator in
  Env.create ~robust cfg

let train_with ~jobs ~checkpoint_path =
  let env = noisy_faulty_env () in
  let cfg = Env_config.default in
  let policy =
    Policy.create ~hidden:8 ~backbone_layers:1 (Util.Rng.create 42) cfg
  in
  let config =
    {
      Trainer.default_config with
      Trainer.iterations = 4;
      seed = 42;
      jobs;
      checkpoint_path = Some checkpoint_path;
      checkpoint_every = 2;
    }
  in
  Trainer.train config env policy ~ops:small_ops

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let cleanup path =
  List.iter
    (fun ext -> try Sys.remove (path ^ ext) with Sys_error _ -> ())
    [ ".meta"; ".params"; ".optim" ]

let test_jobs_bit_reproducible () =
  let dir = Filename.get_temp_dir_name () in
  let p1 = Filename.concat dir "mlir_rl_par_j1"
  and p4 = Filename.concat dir "mlir_rl_par_j4" in
  cleanup p1;
  cleanup p4;
  let s1 = train_with ~jobs:1 ~checkpoint_path:p1 in
  let s4 = train_with ~jobs:4 ~checkpoint_path:p4 in
  Alcotest.(check int) "same iteration count" (List.length s1) (List.length s4);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "iteration %d stats" (i + 1))
        (stats_key a) (stats_key b))
    (List.combine s1 s4);
  (* The checkpoints must agree byte for byte — except the .meta, which
     is identical too because accounting is merged in episode order. *)
  List.iter
    (fun ext ->
      Alcotest.(check bool)
        (ext ^ " bytes identical")
        true
        (read_file (p1 ^ ext) = read_file (p4 ^ ext)))
    [ ".meta"; ".params"; ".optim" ];
  cleanup p1;
  cleanup p4

(* ------------------------------------------------------------------ *)
(* Batched inference == per-state inference                            *)

let test_act_batch_matches_singletons () =
  let cfg = Env_config.default in
  let policy =
    Policy.create ~hidden:16 ~backbone_layers:2 (Util.Rng.create 3) cfg
  in
  (* Distinct observations: a few steps into two different nests. *)
  let states =
    [|
      Sched_state.init (Linalg.matmul ~m:64 ~n:64 ~k:64 ());
      Sched_state.init (Linalg.matmul ~m:128 ~n:32 ~k:16 ());
      Sched_state.init (Linalg.add [| 64; 64 |]);
      Sched_state.init (Linalg.matmul ~m:8 ~n:12 ~k:16 ());
    |]
  in
  let obs = Array.map (Observation.extract cfg) states in
  let masks = Array.map (Action_space.masks cfg) states in
  let n = Array.length states in
  let batch_rngs = Array.init n (fun i -> Util.Rng.create (100 + i)) in
  let single_rngs = Array.init n (fun i -> Util.Rng.create (100 + i)) in
  let batched = Policy.act_batch batch_rngs policy ~obs ~masks in
  Array.iteri
    (fun i (action, logp, value) ->
      let singleton =
        Policy.act_batch
          [| single_rngs.(i) |]
          policy
          ~obs:[| obs.(i) |]
          ~masks:[| masks.(i) |]
      in
      let a1, l1, v1 = singleton.(0) in
      Alcotest.(check bool)
        (Printf.sprintf "row %d action" i)
        true (action = a1);
      Alcotest.(check (float 0.0)) (Printf.sprintf "row %d logp" i) l1 logp;
      Alcotest.(check (float 0.0)) (Printf.sprintf "row %d value" i) v1 value;
      Alcotest.(check int64)
        (Printf.sprintf "row %d rng position" i)
        (Util.Rng.state single_rngs.(i))
        (Util.Rng.state batch_rngs.(i)))
    batched

let test_act_batch_matches_scalar_act () =
  (* The scalar tape-building path and the tape-free batched path must
     sample identically from the same rng state. *)
  let cfg = Env_config.default in
  let policy =
    Policy.create ~hidden:16 ~backbone_layers:2 (Util.Rng.create 5) cfg
  in
  let st = Sched_state.init (Linalg.matmul ~m:64 ~n:64 ~k:64 ()) in
  let obs = Observation.extract cfg st in
  let masks = Action_space.masks cfg st in
  for trial = 0 to 9 do
    let r_scalar = Util.Rng.create (200 + trial) in
    let r_batch = Util.Rng.create (200 + trial) in
    let a_s, l_s, v_s = Policy.act r_scalar policy ~obs ~masks in
    let batched =
      Policy.act_batch [| r_batch |] policy ~obs:[| obs |] ~masks:[| masks |]
    in
    let a_b, l_b, v_b = batched.(0) in
    Alcotest.(check bool) (Printf.sprintf "trial %d action" trial) true (a_s = a_b);
    Alcotest.(check (float 1e-9)) (Printf.sprintf "trial %d logp" trial) l_s l_b;
    Alcotest.(check (float 1e-9)) (Printf.sprintf "trial %d value" trial) v_s v_b
  done

(* ------------------------------------------------------------------ *)
(* Sharded cache                                                       *)

let test_cache_basics () =
  let c = Util.Sharded_cache.create ~shards:4 ~capacity:8 () in
  Alcotest.(check (option int)) "miss" None (Util.Sharded_cache.find_opt c "a");
  Util.Sharded_cache.add c "a" 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Util.Sharded_cache.find_opt c "a");
  let v = Util.Sharded_cache.find_or_compute c "b" (fun () -> 2) in
  Alcotest.(check int) "computed" 2 v;
  let v = Util.Sharded_cache.find_or_compute c "b" (fun () -> 99) in
  Alcotest.(check int) "memoized" 2 v;
  let s = Util.Sharded_cache.stats c in
  Alcotest.(check int) "hits" 2 s.Util.Sharded_cache.hits;
  Alcotest.(check int) "misses" 2 s.Util.Sharded_cache.misses

let test_cache_eviction () =
  let capacity = 16 in
  let c = Util.Sharded_cache.create ~shards:4 ~capacity () in
  for i = 0 to 199 do
    Util.Sharded_cache.add c (string_of_int i) i
  done;
  let s = Util.Sharded_cache.stats c in
  Alcotest.(check bool) "bounded" true (s.Util.Sharded_cache.size <= capacity);
  Alcotest.(check bool) "evicted" true (s.Util.Sharded_cache.evictions > 0);
  Alcotest.(check int) "length agrees" s.Util.Sharded_cache.size
    (Util.Sharded_cache.length c)

let test_cache_hammer () =
  (* Four domains pound overlapping key ranges through find_or_compute;
     every lookup must return the key's own value, and the cache must
     stay within its bound. *)
  let c = Util.Sharded_cache.create ~shards:8 ~capacity:256 () in
  let errors = Atomic.make 0 in
  let worker w () =
    let rng = Util.Rng.create (1000 + w) in
    for _ = 1 to 5_000 do
      let k = Util.Rng.int rng 512 in
      let v =
        Util.Sharded_cache.find_or_compute c (string_of_int k) (fun () -> k * 3)
      in
      if v <> k * 3 then Atomic.incr errors
    done
  in
  let domains = Array.init 4 (fun w -> Domain.spawn (worker w)) in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no wrong values" 0 (Atomic.get errors);
  let s = Util.Sharded_cache.stats c in
  Alcotest.(check bool) "bounded under contention" true
    (s.Util.Sharded_cache.size <= 256);
  Alcotest.(check int) "accounted every lookup" 20_000
    (s.Util.Sharded_cache.hits + s.Util.Sharded_cache.misses)

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)

let test_pool_map_array () =
  let pool = Util.Domain_pool.create ~size:3 in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () ->
      let out =
        Util.Domain_pool.map_array pool (fun x -> x * x)
          (Array.init 50 (fun i -> i))
      in
      Array.iteri
        (fun i v -> Alcotest.(check int) (Printf.sprintf "elt %d" i) (i * i) v)
        out)

let test_pool_exception_propagates () =
  let pool = Util.Domain_pool.create ~size:2 in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () ->
      let p = Util.Domain_pool.submit pool (fun () -> failwith "boom") in
      Alcotest.check_raises "worker exception re-raised" (Failure "boom")
        (fun () -> ignore (Util.Domain_pool.await p)))

let test_pool_shutdown_idempotent () =
  let pool = Util.Domain_pool.create ~size:2 in
  let p = Util.Domain_pool.submit pool (fun () -> 41 + 1) in
  Alcotest.(check int) "queued task ran" 42 (Util.Domain_pool.await p);
  Util.Domain_pool.shutdown pool;
  Util.Domain_pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Domain_pool.submit: pool is shut down") (fun () ->
      ignore (Util.Domain_pool.submit pool (fun () -> 0)))

let test_pool_concurrent_shutdown () =
  (* Several domains race shutdown: exactly one joins the workers, the
     rest must block until the join completes, and every caller must
     return with the workers gone. *)
  let pool = Util.Domain_pool.create ~size:2 in
  let p = Util.Domain_pool.submit pool (fun () -> 7 * 6) in
  Alcotest.(check int) "task before the race" 42 (Util.Domain_pool.await p);
  let racers =
    Array.init 3 (fun _ -> Domain.spawn (fun () -> Util.Domain_pool.shutdown pool))
  in
  Util.Domain_pool.shutdown pool;
  Array.iter Domain.join racers;
  Alcotest.check_raises "pool closed after the race"
    (Invalid_argument "Domain_pool.submit: pool is shut down") (fun () ->
      ignore (Util.Domain_pool.submit pool (fun () -> 0)))

let test_pool_survives_raising_tasks () =
  (* A task that raises must not take its worker down: with one worker,
     a later task can only run if the worker survived. *)
  let pool = Util.Domain_pool.create ~size:1 in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () ->
      let bad = Util.Domain_pool.submit pool (fun () -> failwith "kaboom") in
      Alcotest.check_raises "exception surfaced at await" (Failure "kaboom")
        (fun () -> ignore (Util.Domain_pool.await bad));
      let good = Util.Domain_pool.submit pool (fun () -> "alive") in
      Alcotest.(check string) "worker survived the raising task" "alive"
        (Util.Domain_pool.await good))

let suite =
  [
    Alcotest.test_case "derive is pure" `Quick test_derive_pure;
    Alcotest.test_case "derive streams decorrelated" `Quick
      test_derive_streams_decorrelated;
    Alcotest.test_case "jobs=1 and jobs=4 bit-identical (stats + checkpoints)"
      `Slow test_jobs_bit_reproducible;
    Alcotest.test_case "act_batch rows = singleton batches" `Quick
      test_act_batch_matches_singletons;
    Alcotest.test_case "act_batch = scalar act" `Quick
      test_act_batch_matches_scalar_act;
    Alcotest.test_case "sharded cache basics" `Quick test_cache_basics;
    Alcotest.test_case "sharded cache eviction bound" `Quick test_cache_eviction;
    Alcotest.test_case "sharded cache 4-domain hammer" `Slow test_cache_hammer;
    Alcotest.test_case "pool map_array ordered" `Quick test_pool_map_array;
    Alcotest.test_case "pool exception propagation" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "pool shutdown idempotent" `Quick
      test_pool_shutdown_idempotent;
    Alcotest.test_case "pool shutdown races are safe" `Quick
      test_pool_concurrent_shutdown;
    Alcotest.test_case "pool survives raising tasks" `Quick
      test_pool_survives_raising_tasks;
  ]
