(* Producer-consumer fusion (paper §6.1 future work). *)

let rng () = Util.Rng.create 404

let buffers rng specs =
  List.map (fun (name, size) -> (name, Test_helpers.buffer_of rng size)) specs

let check_fusion ~producer ~consumer ~consumer_input bindings =
  match Fusion.fuse ~producer ~consumer ~consumer_input with
  | Error e -> Alcotest.fail e
  | Ok fused ->
      let expected =
        Fusion.execute_fused_reference producer consumer ~consumer_input bindings
      in
      let fused_inputs =
        Array.to_list
          (Array.map
             (fun (o : Linalg.operand) ->
               (o.Linalg.name, List.assoc o.Linalg.name bindings))
             fused.Linalg.inputs)
      in
      let got = Linalg.execute_reference fused fused_inputs in
      Test_helpers.check_close "fused == sequential" got expected;
      fused

let test_add_relu_fusion () =
  (* relu(x + y): the residual-block tail. *)
  let producer = Linalg.add [| 8; 16 |] in
  let consumer = Linalg.relu [| 8; 16 |] in
  let r = rng () in
  let bindings = buffers r [ ("p_in0", 128); ("p_in1", 128) ] in
  let fused = check_fusion ~producer ~consumer ~consumer_input:0 bindings in
  Alcotest.(check int) "two inputs" 2 (Array.length fused.Linalg.inputs);
  (* exactly one pass over memory: inputs are the original x and y *)
  Alcotest.(check (list string)) "input names" [ "p_in0"; "p_in1" ]
    (Array.to_list (Array.map (fun (o : Linalg.operand) -> o.Linalg.name) fused.Linalg.inputs))

let test_bias_relu_fusion () =
  let producer = Linalg.bias_add [| 8; 16 |] in
  let consumer = Linalg.relu [| 8; 16 |] in
  let r = rng () in
  let bindings = buffers r [ ("p_x", 128); ("p_bias", 16) ] in
  ignore (check_fusion ~producer ~consumer ~consumer_input:0 bindings)

let test_scale_into_matmul_fusion () =
  (* C = (x .* y) @ B : fusing an elementwise producer into a reduction
     consumer (the consumer's accumulator is untouched). *)
  let producer = Linalg.binary Linalg.Mul_k [| 8; 12 |] in
  let consumer = Linalg.matmul ~m:8 ~n:6 ~k:12 () in
  let r = rng () in
  let bindings = buffers r [ ("p_in0", 96); ("p_in1", 96); ("B", 72) ] in
  let fused = check_fusion ~producer ~consumer ~consumer_input:0 bindings in
  (* producer operands are now indexed by the matmul's (m, k) dims *)
  Alcotest.(check int) "three inputs" 3 (Array.length fused.Linalg.inputs)

let test_fused_op_schedulable () =
  let producer = Linalg.add [| 8; 16 |] in
  let consumer = Linalg.relu [| 8; 16 |] in
  let fused =
    Result.get_ok (Fusion.fuse ~producer ~consumer ~consumer_input:0)
  in
  Test_helpers.check_schedule_preserves fused
    [ Schedule.Parallelize [| 4; 0 |]; Schedule.Tile [| 2; 4 |]; Schedule.Vectorize ]

let test_fusion_saves_time () =
  (* The model must price the fused op below producer + consumer. *)
  let shape = [| 2048; 2048 |] in
  let producer = Linalg.bias_add shape in
  let consumer = Linalg.relu shape in
  let fused = Result.get_ok (Fusion.fuse ~producer ~consumer ~consumer_input:0) in
  let ev = Evaluator.create () in
  let t op = Evaluator.base_seconds ev op in
  Alcotest.(check bool)
    (Printf.sprintf "fused %.4g < %.4g + %.4g" (t fused) (t producer) (t consumer))
    true
    (t fused < t producer +. t consumer)

let test_fusion_rejects_reduction_producer () =
  let producer = Linalg.matmul ~m:8 ~n:16 ~k:4 () in
  let consumer = Linalg.relu [| 8; 16 |] in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Fusion.fuse ~producer ~consumer ~consumer_input:0))

let test_fusion_rejects_shape_mismatch () =
  let producer = Linalg.add [| 4; 4 |] in
  let consumer = Linalg.relu [| 8; 16 |] in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Fusion.fuse ~producer ~consumer ~consumer_input:0))

let test_fusion_rejects_bad_index () =
  let producer = Linalg.add [| 8; 16 |] in
  let consumer = Linalg.relu [| 8; 16 |] in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Fusion.fuse ~producer ~consumer ~consumer_input:3))

let qcheck_chain_fusion =
  (* Random elementwise chains fuse correctly. *)
  QCheck.Test.make ~name:"random elementwise chains fuse correctly" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let r = Util.Rng.create seed in
      let shape = [| 1 + Util.Rng.int r 6; 1 + Util.Rng.int r 10 |] in
      let pick_binary () =
        Linalg.binary
          (Util.Rng.choice r [| Linalg.Add_k; Linalg.Sub_k; Linalg.Mul_k |])
          shape
      in
      let pick_unary () =
        Linalg.unary (Util.Rng.choice r [| Linalg.Exp_k; Linalg.Relu_k |]) shape
      in
      let producer = pick_binary () in
      let consumer = if Util.Rng.bool r then pick_unary () else pick_binary () in
      let ci = Util.Rng.int r (Array.length consumer.Linalg.inputs) in
      let size = shape.(0) * shape.(1) in
      let bindings =
        buffers r
          ([ ("p_in0", size); ("p_in1", size) ]
          @ List.init (Array.length consumer.Linalg.inputs) (fun i ->
                (Printf.sprintf "in%d" i, size)))
      in
      ignore (check_fusion ~producer ~consumer ~consumer_input:ci bindings);
      true)

let suite =
  [
    Alcotest.test_case "add+relu" `Quick test_add_relu_fusion;
    Alcotest.test_case "bias_add+relu" `Quick test_bias_relu_fusion;
    Alcotest.test_case "elementwise into matmul" `Quick test_scale_into_matmul_fusion;
    Alcotest.test_case "fused op schedulable" `Quick test_fused_op_schedulable;
    Alcotest.test_case "fusion saves time" `Quick test_fusion_saves_time;
    Alcotest.test_case "rejects reduction producer" `Quick
      test_fusion_rejects_reduction_producer;
    Alcotest.test_case "rejects shape mismatch" `Quick test_fusion_rejects_shape_mismatch;
    Alcotest.test_case "rejects bad index" `Quick test_fusion_rejects_bad_index;
    QCheck_alcotest.to_alcotest qcheck_chain_fusion;
  ]
