(* End-to-end smoke: train small policies and check learning signals. *)

let small_cfg = Env_config.default

let test_hierarchical_training_runs () =
  let env = Env.create small_cfg in
  let rng = Util.Rng.create 1001 in
  let policy = Policy.create ~hidden:24 ~backbone_layers:2 rng small_cfg in
  let op = Linalg.matmul ~m:256 ~n:256 ~k:256 () in
  let config =
    { Trainer.default_config with Trainer.iterations = 4; seed = 7 }
  in
  let stats = Trainer.train config env policy ~ops:[| op |] in
  Alcotest.(check int) "four iterations" 4 (List.length stats);
  List.iter
    (fun (s : Trainer.iteration_stats) ->
      Alcotest.(check bool) "finite return" true
        (Float.is_finite s.Trainer.mean_episode_return);
      Alcotest.(check bool) "speedup positive" true (s.Trainer.mean_final_speedup > 0.0))
    stats;
  (* Exploration during 4 iterations finds decent schedules. *)
  let last = List.nth stats 3 in
  Alcotest.(check bool) "found something" true (last.Trainer.best_speedup > 1.0)

let test_training_deterministic_given_seed () =
  let run () =
    let env = Env.create small_cfg in
    let rng = Util.Rng.create 77 in
    let policy = Policy.create ~hidden:16 ~backbone_layers:1 rng small_cfg in
    let op = Linalg.matmul ~m:128 ~n:128 ~k:128 () in
    let config = { Trainer.default_config with Trainer.iterations = 2; seed = 3 } in
    List.map
      (fun (s : Trainer.iteration_stats) -> s.Trainer.mean_episode_return)
      (Trainer.train config env policy ~ops:[| op |])
  in
  let a = run () and b = run () in
  List.iter2 (fun x y -> Alcotest.(check (float 1e-9)) "same returns" x y) a b

let test_greedy_rollout_valid_schedule () =
  let env = Env.create small_cfg in
  let rng = Util.Rng.create 5 in
  let policy = Policy.create ~hidden:16 ~backbone_layers:1 rng small_cfg in
  let op = Linalg.matmul ~m:128 ~n:128 ~k:128 () in
  let sched, speedup = Trainer.greedy_rollout env policy op in
  Alcotest.(check bool) "schedule applies" true
    (Result.is_ok (Sched_state.apply_all op sched));
  Alcotest.(check bool) "speedup positive" true (speedup > 0.0)

let test_sampled_best_improves_on_average () =
  let env = Env.create small_cfg in
  let rng = Util.Rng.create 6 in
  let policy = Policy.create ~hidden:16 ~backbone_layers:1 rng small_cfg in
  let op = Linalg.matmul ~m:256 ~n:256 ~k:256 () in
  let _, best1 = Trainer.sampled_best rng env policy op ~trials:1 in
  let _, best20 = Trainer.sampled_best rng env policy op ~trials:20 in
  Alcotest.(check bool) "more trials can't hurt" true (best20 >= best1 *. 0.999)

let test_flat_training_runs () =
  let env = Env.create small_cfg in
  let rng = Util.Rng.create 1002 in
  let op = Linalg.matmul ~m:256 ~n:256 ~k:256 () in
  let policy =
    Flat_policy.create ~hidden:24 ~backbone_layers:1 rng small_cfg
      ~n_loops:(Linalg.n_loops op)
  in
  let config = { Trainer.default_config with Trainer.iterations = 3; seed = 9 } in
  let stats = Trainer.train_flat config env policy ~ops:[| op |] in
  Alcotest.(check int) "three iterations" 3 (List.length stats);
  Alcotest.(check bool) "explored some schedules" true
    ((List.nth stats 2).Trainer.schedules_explored > 0)

let test_training_improves_over_iterations () =
  (* On a single op with a small net, the mean return should trend up
     between the first and the best later iteration. *)
  let env = Env.create small_cfg in
  let rng = Util.Rng.create 2024 in
  let policy = Policy.create ~hidden:32 ~backbone_layers:2 rng small_cfg in
  let op = Linalg.matmul ~m:512 ~n:512 ~k:512 () in
  let config = { Trainer.default_config with Trainer.iterations = 12; seed = 1 } in
  let stats = Trainer.train config env policy ~ops:[| op |] in
  let first = (List.hd stats).Trainer.mean_episode_return in
  let best_later =
    List.fold_left
      (fun acc (s : Trainer.iteration_stats) -> Float.max acc s.Trainer.mean_episode_return)
      neg_infinity (List.tl stats)
  in
  Alcotest.(check bool)
    (Printf.sprintf "improves (first %.3f, best later %.3f)" first best_later)
    true (best_later > first)

let suite =
  [
    Alcotest.test_case "hierarchical training runs" `Slow test_hierarchical_training_runs;
    Alcotest.test_case "training deterministic" `Slow test_training_deterministic_given_seed;
    Alcotest.test_case "greedy rollout valid" `Quick test_greedy_rollout_valid_schedule;
    Alcotest.test_case "sampled best monotone-ish" `Quick
      test_sampled_best_improves_on_average;
    Alcotest.test_case "flat training runs" `Slow test_flat_training_runs;
    Alcotest.test_case "training improves" `Slow test_training_improves_over_iterations;
  ]
