(* Cost model and evaluator: directional properties the RL reward
   relies on. Absolute times are model outputs, so the tests check
   orderings and invariants, not constants. *)

let machine = Machine.e5_2680_v4

let seconds_of op sched =
  let st = Result.get_ok (Sched_state.apply_all op sched) in
  Cost_model.seconds ~machine ~iter_kinds:st.Sched_state.op.Linalg.iter_kinds
    ~packing_elements:st.Sched_state.packing_elements st.Sched_state.nest

let big_matmul () = Linalg.matmul ~m:512 ~n:512 ~k:512 ()

let test_positive_time () =
  let t = seconds_of (big_matmul ()) [] in
  Alcotest.(check bool) "positive" true (t > 0.0 && Float.is_finite t)

let test_vectorize_helps () =
  let op = big_matmul () in
  Alcotest.(check bool) "vectorized faster" true
    (seconds_of op [ Schedule.Vectorize ] < seconds_of op [])

let test_parallel_helps () =
  let op = big_matmul () in
  Alcotest.(check bool) "parallel faster" true
    (seconds_of op [ Schedule.Parallelize [| 64; 64; 0 |] ] < seconds_of op [])

let test_parallel_capped_by_cores () =
  let op = big_matmul () in
  let r =
    let st =
      Result.get_ok
        (Sched_state.apply_all op [ Schedule.Parallelize [| 8; 8; 0 |] ])
    in
    Cost_model.estimate ~machine ~iter_kinds:op.Linalg.iter_kinds
      st.Sched_state.nest
  in
  Alcotest.(check bool) "factor <= cores" true
    (r.Cost_model.parallel_factor <= float_of_int machine.Machine.cores)

let test_tiling_reduces_l2_traffic () =
  (* Tiled matmul re-streams B far less often. *)
  let op = big_matmul () in
  let traffic sched level =
    let st = Result.get_ok (Sched_state.apply_all op sched) in
    let r =
      Cost_model.estimate ~machine ~iter_kinds:op.Linalg.iter_kinds
        st.Sched_state.nest
    in
    let lt = List.find (fun t -> t.Cost_model.level = level) r.Cost_model.traffic in
    lt.Cost_model.miss_lines
  in
  Alcotest.(check bool) "less L2 traffic when tiled" true
    (traffic [ Schedule.Tile [| 64; 64; 64 |] ] "l2" < traffic [] "l2")

let test_interchange_changes_time () =
  (* Moving the reduction off the innermost position changes the cost
     (breaks the accumulator chain but loses B locality). *)
  let op = big_matmul () in
  let t1 = seconds_of op [] in
  let t2 = seconds_of op [ Schedule.Swap 1 ] in
  Alcotest.(check bool) "different" true (Float.abs (t1 -. t2) > 1e-12)

let test_vector_efficiency_contiguous () =
  (* Vectorizing the n loop of matmul (contiguous in B and C) gets full
     lane efficiency; k (column-strided B) does not. *)
  let op = big_matmul () in
  let eff sched =
    let st = Result.get_ok (Sched_state.apply_all op sched) in
    (Cost_model.estimate ~machine ~iter_kinds:op.Linalg.iter_kinds
       st.Sched_state.nest)
      .Cost_model.vector_efficiency
  in
  let eff_n = eff [ Schedule.Swap 1; Schedule.Vectorize ] in
  let eff_k = eff [ Schedule.Vectorize ] in
  Alcotest.(check (float 1e-9)) "n loop full lanes" 1.0 eff_n;
  Alcotest.(check bool) "k loop also contiguous in A" true (eff_k > 0.0)

let test_launch_overhead_counted () =
  let op = big_matmul () in
  let st =
    Result.get_ok
      (Sched_state.apply_all op
         [ Schedule.Tile [| 8; 0; 0 |]; Schedule.Parallelize [| 0; 64; 0 |] ])
  in
  let r =
    Cost_model.estimate ~machine ~iter_kinds:op.Linalg.iter_kinds
      st.Sched_state.nest
  in
  (* The tile band loop (trip 64) sits outside the parallel band. *)
  Alcotest.(check int) "one launch per outer iteration" 64 r.Cost_model.launches

let test_packing_cost_charged () =
  let conv =
    Linalg.conv2d
      {
        Linalg.batch = 1;
        in_h = 30;
        in_w = 30;
        channels = 16;
        kernel_h = 3;
        kernel_w = 3;
        filters = 32;
        stride = 1;
      }
  in
  let st = Result.get_ok (Sched_state.apply_all conv [ Schedule.Im2col ]) in
  let r =
    Cost_model.estimate ~machine ~iter_kinds:st.Sched_state.op.Linalg.iter_kinds
      ~packing_elements:st.Sched_state.packing_elements st.Sched_state.nest
  in
  Alcotest.(check bool) "packing charged" true (r.Cost_model.packing_seconds > 0.0)

let test_more_iterations_cost_more () =
  let t1 = seconds_of (Linalg.matmul ~m:128 ~n:128 ~k:128 ()) [] in
  let t2 = seconds_of (Linalg.matmul ~m:256 ~n:256 ~k:256 ()) [] in
  Alcotest.(check bool) "monotone in size" true (t2 > t1)

(* --- evaluator --- *)

let test_evaluator_speedup_one_for_identity () =
  let ev = Evaluator.create () in
  let op = big_matmul () in
  let st = Sched_state.init op in
  Alcotest.(check (float 1e-9)) "identity speedup" 1.0 (Evaluator.speedup ev st)

let test_evaluator_base_cached () =
  let ev = Evaluator.create () in
  let op = big_matmul () in
  let a = Evaluator.base_seconds ev op in
  let b = Evaluator.base_seconds ev op in
  Alcotest.(check (float 1e-12)) "cached" a b

let test_evaluator_counts_measurements () =
  let ev = Evaluator.create () in
  let op = big_matmul () in
  Evaluator.reset_explored ev;
  ignore (Evaluator.schedule_speedup ev op [ Schedule.Vectorize ]);
  ignore (Evaluator.schedule_speedup ev op [ Schedule.Swap 0; Schedule.Vectorize ]);
  Alcotest.(check int) "two measurements" 2 (Evaluator.explored ev)

let test_evaluator_schedule_error () =
  let ev = Evaluator.create () in
  let op = big_matmul () in
  Alcotest.(check bool) "bad schedule errors" true
    (Result.is_error
       (Evaluator.schedule_speedup ev op [ Schedule.Tile [| 7; 0; 0 |] ]))

let test_timeout_floor () =
  (* Speedups are floored at 1/timeout_factor by the adaptive timeout. *)
  let ev = Evaluator.create () in
  let op = Linalg.add [| 64; 64 |] in
  (* A pathological schedule: tile with size 1 everywhere then more
     levels; might not trigger the timeout, so only the floor invariant
     is checked. *)
  match
    Sched_state.apply_all op
      [ Schedule.Tile [| 1; 1 |]; Schedule.Tile [| 1; 1 |]; Schedule.Parallelize [| 1; 1 |] ]
  with
  | Error _ -> ()
  | Ok st ->
      Alcotest.(check bool) "floored" true
        (Evaluator.speedup ev st >= (1.0 /. Evaluator.timeout_factor) -. 1e-9)

(* --- cache simulator --- *)

let test_cache_sim_hit_after_miss () =
  let sim = Cache_sim.create Machine.tiny_test_machine in
  Cache_sim.access sim ~buf:"x" ~index:0 ~elem_bytes:4;
  Cache_sim.access sim ~buf:"x" ~index:1 ~elem_bytes:4;
  (* same line *)
  match Cache_sim.stats sim with
  | { Cache_sim.name = "l1"; accesses; misses } :: _ ->
      Alcotest.(check int) "two accesses" 2 accesses;
      Alcotest.(check int) "one miss" 1 misses
  | _ -> Alcotest.fail "expected l1 first"

let test_cache_sim_capacity_eviction () =
  let sim = Cache_sim.create Machine.tiny_test_machine in
  (* L1 is 1 KiB = 16 lines; stream 64 distinct lines twice: second pass
     still misses (capacity). *)
  for pass = 1 to 2 do
    ignore pass;
    for i = 0 to 63 do
      Cache_sim.access sim ~buf:"x" ~index:(i * 16) ~elem_bytes:4
    done
  done;
  match Cache_sim.stats sim with
  | { Cache_sim.misses; _ } :: _ ->
      Alcotest.(check int) "all L1 misses" 128 misses
  | [] -> Alcotest.fail "no stats"

let test_cache_sim_small_footprint_reuse () =
  let sim = Cache_sim.create Machine.tiny_test_machine in
  for pass = 1 to 10 do
    ignore pass;
    for i = 0 to 7 do
      Cache_sim.access sim ~buf:"x" ~index:(i * 16) ~elem_bytes:4
    done
  done;
  match Cache_sim.stats sim with
  | { Cache_sim.misses; _ } :: _ -> Alcotest.(check int) "only cold misses" 8 misses
  | [] -> Alcotest.fail "no stats"

let test_cache_sim_validates_tiling_direction () =
  (* The simulated L2 miss count for a tiled small matmul must not
     exceed the untiled one — same direction as the analytical model. *)
  let op = Linalg.matmul ~m:32 ~n:32 ~k:32 () in
  let misses sched level_idx =
    let st = Result.get_ok (Sched_state.apply_all op sched) in
    match Cache_sim.simulate_nest ~machine:Machine.tiny_test_machine st.Sched_state.nest with
    | Error e -> Alcotest.fail e
    | Ok (_, stats) -> (List.nth stats level_idx).Cache_sim.misses
  in
  let untiled = misses [] 1 in
  let tiled = misses [ Schedule.Tile [| 8; 8; 8 |] ] 1 in
  Alcotest.(check bool)
    (Printf.sprintf "tiled %d <= untiled %d" tiled untiled)
    true (tiled <= untiled)

let qcheck_speedup_positive =
  QCheck.Test.make ~name:"speedups are strictly positive" ~count:40
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let op = Generator.random_op rng
          (Util.Rng.choice rng [| "matmul"; "conv2d"; "maxpool"; "add"; "relu" |]) in
      let ev = Evaluator.create () in
      let st = Sched_state.init op in
      Evaluator.speedup ev st > 0.0)

let suite =
  [
    Alcotest.test_case "positive time" `Quick test_positive_time;
    Alcotest.test_case "vectorize helps" `Quick test_vectorize_helps;
    Alcotest.test_case "parallel helps" `Quick test_parallel_helps;
    Alcotest.test_case "parallel capped by cores" `Quick test_parallel_capped_by_cores;
    Alcotest.test_case "tiling reduces L2 traffic" `Quick test_tiling_reduces_l2_traffic;
    Alcotest.test_case "interchange changes time" `Quick test_interchange_changes_time;
    Alcotest.test_case "vector efficiency contiguity" `Quick
      test_vector_efficiency_contiguous;
    Alcotest.test_case "launch overhead counted" `Quick test_launch_overhead_counted;
    Alcotest.test_case "packing cost charged" `Quick test_packing_cost_charged;
    Alcotest.test_case "monotone in size" `Quick test_more_iterations_cost_more;
    Alcotest.test_case "evaluator identity speedup" `Quick
      test_evaluator_speedup_one_for_identity;
    Alcotest.test_case "evaluator base cached" `Quick test_evaluator_base_cached;
    Alcotest.test_case "evaluator counts measurements" `Quick
      test_evaluator_counts_measurements;
    Alcotest.test_case "evaluator schedule error" `Quick test_evaluator_schedule_error;
    Alcotest.test_case "timeout floor" `Quick test_timeout_floor;
    Alcotest.test_case "cache sim hit after miss" `Quick test_cache_sim_hit_after_miss;
    Alcotest.test_case "cache sim capacity eviction" `Quick
      test_cache_sim_capacity_eviction;
    Alcotest.test_case "cache sim small footprint" `Quick
      test_cache_sim_small_footprint_reuse;
    Alcotest.test_case "cache sim tiling direction" `Quick
      test_cache_sim_validates_tiling_direction;
    QCheck_alcotest.to_alcotest qcheck_speedup_positive;
  ]
