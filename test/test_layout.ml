(* NHWC vs NCHW convolution layouts. *)

let params =
  {
    Linalg.batch = 2;
    in_h = 7;
    in_w = 7;
    channels = 3;
    kernel_h = 3;
    kernel_w = 3;
    filters = 4;
    stride = 1;
  }

(* Transpose a flattened NHWC buffer into NCHW. *)
let nhwc_to_nchw ~n ~h ~w ~c buf =
  let out = Array.make (Array.length buf) 0.0 in
  for ni = 0 to n - 1 do
    for hi = 0 to h - 1 do
      for wi = 0 to w - 1 do
        for ci = 0 to c - 1 do
          out.((((ni * c) + ci) * h * w) + (hi * w) + wi) <-
            buf.((((ni * h) + hi) * w * c) + (wi * c) + ci)
        done
      done
    done
  done;
  out

(* Transpose an HWCF filter into FCHW. *)
let hwcf_to_fchw ~kh ~kw ~c ~f buf =
  let out = Array.make (Array.length buf) 0.0 in
  for hi = 0 to kh - 1 do
    for wi = 0 to kw - 1 do
      for ci = 0 to c - 1 do
        for fi = 0 to f - 1 do
          out.((((fi * c) + ci) * kh * kw) + (hi * kw) + wi) <-
            buf.((((hi * kw) + wi) * c * f) + (ci * f) + fi)
        done
      done
    done
  done;
  out

let test_layouts_agree () =
  let nhwc = Linalg.conv2d params in
  let nchw = Linalg.conv2d_nchw params in
  let rng = Util.Rng.create 606 in
  let image = Test_helpers.buffer_of rng (2 * 7 * 7 * 3) in
  let filter = Test_helpers.buffer_of rng (3 * 3 * 3 * 4) in
  let out_nhwc =
    Linalg.execute_reference nhwc [ ("input", image); ("filter", filter) ]
  in
  let out_nchw =
    Linalg.execute_reference nchw
      [
        ("input", nhwc_to_nchw ~n:2 ~h:7 ~w:7 ~c:3 image);
        ("filter", hwcf_to_fchw ~kh:3 ~kw:3 ~c:3 ~f:4 filter);
      ]
  in
  (* out_nhwc is (n, oh, ow, f); out_nchw is (n, f, oh, ow). *)
  let transposed = nhwc_to_nchw ~n:2 ~h:5 ~w:5 ~c:4 out_nhwc in
  Test_helpers.check_close "layouts compute the same function" out_nchw transposed

let test_nchw_access_matrices_differ () =
  let nhwc = Linalg.conv2d params in
  let nchw = Linalg.conv2d_nchw params in
  Alcotest.(check bool) "input maps differ" false
    (Affine.equal_map nhwc.Linalg.inputs.(0).Linalg.map
       nchw.Linalg.inputs.(0).Linalg.map);
  Alcotest.(check (array int)) "same domain" nhwc.Linalg.domain nchw.Linalg.domain

let test_nchw_not_im2col () =
  let nchw = Linalg.conv2d_nchw params in
  Alcotest.(check bool) "excluded from im2col" false (Linalg.is_conv nchw)

let test_nchw_schedules_preserve () =
  Test_helpers.check_schedule_preserves (Linalg.conv2d_nchw params)
    [ Schedule.Tile [| 0; 0; 0; 2; 0; 0; 0 |]; Schedule.Swap 2; Schedule.Vectorize ]

let test_layout_affects_best_schedule_cost () =
  (* The cost model must distinguish the layouts: vectorizing the channel
     loop is contiguous in NHWC but strided in NCHW. *)
  let big =
    { Linalg.batch = 1; in_h = 58; in_w = 58; channels = 64; kernel_h = 3;
      kernel_w = 3; filters = 64; stride = 1 }
  in
  let machine = Machine.e5_2680_v4 in
  let time op sched =
    let st = Result.get_ok (Sched_state.apply_all op sched) in
    Cost_model.seconds ~machine ~iter_kinds:op.Linalg.iter_kinds
      st.Sched_state.nest
  in
  (* channel loop (dim 6) innermost and vectorized *)
  let sched = [ Schedule.Vectorize ] in
  let t_nhwc = time (Linalg.conv2d big) sched in
  let t_nchw = time (Linalg.conv2d_nchw big) sched in
  Alcotest.(check bool)
    (Printf.sprintf "NHWC %.4g faster than NCHW %.4g under channel vectorization"
       t_nhwc t_nchw)
    true (t_nhwc < t_nchw)

let test_nchw_spec_roundtrip () =
  let spec = "conv2d_nchw:56x56x64,k3,f128,s1" in
  match Op_spec.parse spec with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok op ->
      Alcotest.(check string) "kind" "conv2d_nchw" (Linalg.kind_name op);
      Alcotest.(check (option string)) "roundtrip" (Some spec) (Op_spec.to_spec op)

let suite =
  [
    Alcotest.test_case "layouts agree" `Quick test_layouts_agree;
    Alcotest.test_case "access matrices differ" `Quick test_nchw_access_matrices_differ;
    Alcotest.test_case "nchw not im2col" `Quick test_nchw_not_im2col;
    Alcotest.test_case "nchw schedules preserve" `Quick test_nchw_schedules_preserve;
    Alcotest.test_case "layout affects cost" `Quick test_layout_affects_best_schedule_cost;
    Alcotest.test_case "nchw spec roundtrip" `Quick test_nchw_spec_roundtrip;
  ]
