(* Shared helpers for the suites: random buffers, reference execution,
   semantic-equivalence checks for transformed nests. *)

let buffer_of rng size = Array.init size (fun _ -> Util.Rng.gaussian rng)

let input_buffers rng (op : Linalg.t) =
  Array.to_list
    (Array.map
       (fun (o : Linalg.operand) ->
         (o.Linalg.name, buffer_of rng (Array.fold_left ( * ) 1 o.Linalg.shape)))
       op.Linalg.inputs)

let arrays_close ?(tol = 1e-6) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol *. (1.0 +. Float.abs x)) a b

let check_close name a b =
  if not (arrays_close a b) then
    Alcotest.failf "%s: outputs differ (lengths %d vs %d)" name (Array.length a)
      (Array.length b)

(* Apply a schedule and check the transformed nest computes the same
   function as the original op. *)
let check_schedule_preserves ?(seed = 2024) op sched =
  let rng = Util.Rng.create seed in
  let inputs = input_buffers rng op in
  let expected = Linalg.execute_reference op inputs in
  match Sched_state.apply_all op sched with
  | Error msg -> Alcotest.failf "schedule %s failed: %s" (Schedule.to_string sched) msg
  | Ok st ->
      let has_im2col = List.mem Schedule.Im2col sched in
      if has_im2col then begin
        (* Im2col replaces the op; feed the packed input instead. *)
        match op.Linalg.kind with
        | Linalg.Conv2d p ->
            let image = List.assoc "input" inputs in
            let filter = List.assoc "filter" inputs in
            let packed = Im2col.pack_input p image in
            let bufs =
              Interp.run st.Sched_state.nest
                ~inputs:[ ("A", packed); ("B", filter) ]
            in
            check_close (Schedule.to_string sched)
              (Interp.output_of st.Sched_state.nest bufs)
              expected
        | _ -> Alcotest.fail "im2col schedule on a non-conv op"
      end
      else begin
        let bufs = Interp.run st.Sched_state.nest ~inputs in
        check_close (Schedule.to_string sched)
          (Interp.output_of st.Sched_state.nest bufs)
          expected
      end

let small_matmul () = Linalg.matmul ~m:8 ~n:12 ~k:16 ()

let small_conv () =
  Linalg.conv2d
    {
      Linalg.batch = 2;
      in_h = 8;
      in_w = 8;
      channels = 3;
      kernel_h = 3;
      kernel_w = 3;
      filters = 4;
      stride = 1;
    }

let small_maxpool () =
  Linalg.maxpool
    {
      Linalg.p_batch = 1;
      p_in_h = 8;
      p_in_w = 8;
      p_channels = 4;
      p_kernel = 2;
      p_stride = 2;
    }
