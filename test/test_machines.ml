(* Machine descriptions and cross-machine behaviour of the cost model. *)

let matmul () = Linalg.matmul ~m:512 ~n:512 ~k:512 ()

let best_time machine op =
  let ev = Evaluator.create ~machine () in
  let r = Beam_search.search ev op in
  Evaluator.base_seconds ev op /. r.Beam_search.best_speedup

let test_machine_sanity () =
  List.iter
    (fun (m : Machine.t) ->
      Alcotest.(check bool) (m.Machine.name ^ " cores") true (m.Machine.cores >= 1);
      Alcotest.(check bool) "lanes" true (m.Machine.vector_lanes >= 1);
      Alcotest.(check bool) "cache sizes ascend" true
        (m.Machine.l1.Machine.size_bytes < m.Machine.l2.Machine.size_bytes
        && m.Machine.l2.Machine.size_bytes < m.Machine.l3.Machine.size_bytes);
      Alcotest.(check bool) "latencies ascend" true
        (m.Machine.l1.Machine.latency_cycles < m.Machine.l2.Machine.latency_cycles
        && m.Machine.l2.Machine.latency_cycles < m.Machine.l3.Machine.latency_cycles
        && m.Machine.l3.Machine.latency_cycles < m.Machine.mem_latency_cycles);
      Alcotest.(check bool) "bandwidths" true
        (m.Machine.single_core_bw_gbs <= m.Machine.total_bw_gbs))
    [ Machine.e5_2680_v4; Machine.avx512_server; Machine.mobile_quad;
      Machine.tiny_test_machine ]

let test_bigger_machine_is_faster () =
  (* Best achievable matmul time orders with machine capability. *)
  let op = matmul () in
  let xeon = best_time Machine.e5_2680_v4 op in
  let server = best_time Machine.avx512_server op in
  let mobile = best_time Machine.mobile_quad op in
  Alcotest.(check bool)
    (Printf.sprintf "server %.2g < xeon %.2g < mobile %.2g" server xeon mobile)
    true
    (server < xeon && xeon < mobile)

let test_single_core_restriction () =
  let m = Machine.single_core Machine.e5_2680_v4 in
  Alcotest.(check int) "one core" 1 m.Machine.cores;
  (* parallelization then buys nothing beyond launch overhead *)
  let op = matmul () in
  let ev = Evaluator.create ~machine:m () in
  let seq = Result.get_ok (Evaluator.schedule_speedup ev op [ Schedule.Vectorize ]) in
  let par =
    Result.get_ok
      (Evaluator.schedule_speedup ev op
         [ Schedule.Parallelize [| 64; 64; 0 |]; Schedule.Vectorize ])
  in
  Alcotest.(check bool) "no parallel win on 1 core" true (par <= seq *. 1.05)

let test_schedule_transfer_penalty () =
  (* A schedule tuned for machine A, run on machine B, is no better than
     B's natively tuned schedule. *)
  let op = matmul () in
  let tuned_for machine =
    let ev = Evaluator.create ~machine () in
    (Beam_search.search ev op).Beam_search.best_schedule
  in
  let speed_on machine sched =
    let ev = Evaluator.create ~machine () in
    Result.get_ok (Evaluator.schedule_speedup ev op sched)
  in
  let mobile_native = speed_on Machine.mobile_quad (tuned_for Machine.mobile_quad) in
  let mobile_with_server_sched =
    speed_on Machine.mobile_quad (tuned_for Machine.avx512_server)
  in
  Alcotest.(check bool)
    (Printf.sprintf "native %.1f >= transferred %.1f" mobile_native
       mobile_with_server_sched)
    true
    (mobile_native >= mobile_with_server_sched *. 0.999)

let test_vector_width_matters () =
  (* The same fully-vectorized compute-bound schedule gains more on the
     16-lane machine than on the 4-lane one. *)
  let op = matmul () in
  let gain machine =
    let ev = Evaluator.create ~machine () in
    let sched = [ Schedule.Swap 1; Schedule.Vectorize ] in
    Result.get_ok (Evaluator.schedule_speedup ev op sched)
  in
  Alcotest.(check bool) "wider SIMD gains more" true
    (gain Machine.avx512_server > gain Machine.mobile_quad)

let suite =
  [
    Alcotest.test_case "machine sanity" `Quick test_machine_sanity;
    Alcotest.test_case "capability ordering" `Quick test_bigger_machine_is_faster;
    Alcotest.test_case "single-core restriction" `Quick test_single_core_restriction;
    Alcotest.test_case "schedule transfer penalty" `Quick test_schedule_transfer_penalty;
    Alcotest.test_case "vector width matters" `Quick test_vector_width_matters;
  ]
