(* Beam-search auto-scheduler. *)

let ev () = Evaluator.create ()

let test_beam_beats_trivial () =
  let e = ev () in
  let op = Linalg.matmul ~m:256 ~n:256 ~k:256 () in
  let trivial = Result.get_ok (Evaluator.schedule_speedup e op [ Schedule.Vectorize ]) in
  let r = Beam_search.search e op in
  Alcotest.(check bool) "improves" true (r.Beam_search.best_speedup > trivial)

let test_beam_schedule_applies () =
  let e = ev () in
  List.iter
    (fun op ->
      let r = Beam_search.search e op in
      (match List.rev r.Beam_search.best_schedule with
      | Schedule.Vectorize :: _ -> ()
      | _ -> Alcotest.fail "must end with vectorize");
      match Sched_state.apply_all op r.Beam_search.best_schedule with
      | Ok st ->
          let measured = Evaluator.speedup e st in
          Alcotest.(check (float 1e-6)) "reported speedup is real"
            r.Beam_search.best_speedup measured
      | Error msg -> Alcotest.fail msg)
    [
      Linalg.matmul ~m:256 ~n:256 ~k:256 ();
      Test_helpers.small_conv ();
      Test_helpers.small_maxpool ();
      Linalg.add [| 256; 256 |];
    ]

let test_beam_deterministic () =
  let op = Linalg.matmul ~m:512 ~n:512 ~k:512 () in
  let r1 = Beam_search.search (ev ()) op in
  let r2 = Beam_search.search (ev ()) op in
  Alcotest.(check (float 1e-12)) "same result" r1.Beam_search.best_speedup
    r2.Beam_search.best_speedup;
  Alcotest.(check int) "same exploration" r1.Beam_search.explored
    r2.Beam_search.explored

let test_beam_width_monotone_budget () =
  (* A wider beam explores at least as many states. *)
  let op = Linalg.matmul ~m:512 ~n:512 ~k:512 () in
  let run width =
    Beam_search.search
      ~config:{ Beam_search.default_config with Beam_search.beam_width = width }
      (ev ()) op
  in
  let narrow = run 2 and wide = run 12 in
  Alcotest.(check bool) "wide explores more" true
    (wide.Beam_search.explored >= narrow.Beam_search.explored);
  Alcotest.(check bool) "wide at least as good" true
    (wide.Beam_search.best_speedup >= narrow.Beam_search.best_speedup *. 0.999)

let test_beam_depth_one_is_greedy () =
  let op = Linalg.matmul ~m:256 ~n:256 ~k:256 () in
  let r =
    Beam_search.search
      ~config:{ Beam_search.default_config with Beam_search.max_depth = 1 }
      (ev ()) op
  in
  (* Depth 1 cannot expand anything: only the root's virtual vectorize. *)
  Alcotest.(check (list string)) "vectorize only"
    [ "vectorization" ]
    (List.map Schedule.transformation_name r.Beam_search.best_schedule)

let test_beam_efficient_vs_exhaustive () =
  (* At an equal evaluation budget the guided search should not lose
     badly to random exhaustive exploration on a conv. *)
  let e = ev () in
  let op =
    Linalg.conv2d
      { Linalg.batch = 1; in_h = 28; in_w = 28; channels = 32; kernel_h = 3;
        kernel_w = 3; filters = 64; stride = 1 }
  in
  let b = Beam_search.search e op in
  let a =
    Auto_scheduler.search
      ~config:
        {
          Auto_scheduler.default_config with
          Auto_scheduler.max_schedules = b.Beam_search.explored;
        }
      e op
  in
  Alcotest.(check bool)
    (Printf.sprintf "beam %.0f vs exhaustive %.0f" b.Beam_search.best_speedup
       a.Auto_scheduler.best_speedup)
    true
    (b.Beam_search.best_speedup >= 0.5 *. a.Auto_scheduler.best_speedup)

let suite =
  [
    Alcotest.test_case "beats trivial" `Quick test_beam_beats_trivial;
    Alcotest.test_case "schedules apply" `Quick test_beam_schedule_applies;
    Alcotest.test_case "deterministic" `Quick test_beam_deterministic;
    Alcotest.test_case "width monotone" `Quick test_beam_width_monotone_budget;
    Alcotest.test_case "depth one is greedy" `Quick test_beam_depth_one_is_greedy;
    Alcotest.test_case "efficient vs exhaustive" `Quick test_beam_efficient_vs_exhaustive;
  ]
