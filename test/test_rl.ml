(* GAE and PPO core. *)

let step r v t = { Gae.reward = r; value = v; terminal = t }

let test_gae_single_step () =
  (* One terminal step: advantage = r - V(s). *)
  let adv, ret = Gae.advantages ~gamma:0.99 ~lambda:0.95 [| step 2.0 0.5 true |] in
  Alcotest.(check (float 1e-9)) "advantage" 1.5 adv.(0);
  Alcotest.(check (float 1e-9)) "return" 2.0 ret.(0)

let test_gae_two_step_episode () =
  (* r0=0, r1=1, V=(0.5, 0.5), gamma=1, lambda=1:
     delta1 = 1 - 0.5 = 0.5 ; delta0 = 0 + 0.5 - 0.5 = 0
     adv0 = delta0 + delta1 = 0.5 ; adv1 = 0.5 *)
  let adv, _ =
    Gae.advantages ~gamma:1.0 ~lambda:1.0 [| step 0.0 0.5 false; step 1.0 0.5 true |]
  in
  Alcotest.(check (float 1e-9)) "adv0" 0.5 adv.(0);
  Alcotest.(check (float 1e-9)) "adv1" 0.5 adv.(1)

let test_gae_terminal_resets () =
  (* Two one-step episodes: the second's reward must not leak into the
     first's advantage. *)
  let adv, _ =
    Gae.advantages ~gamma:0.99 ~lambda:0.95 [| step 1.0 0.0 true; step 100.0 0.0 true |]
  in
  Alcotest.(check (float 1e-9)) "episode 1 isolated" 1.0 adv.(0);
  Alcotest.(check (float 1e-9)) "episode 2" 100.0 adv.(1)

let test_gae_gamma_discounting () =
  let adv, _ =
    Gae.advantages ~gamma:0.5 ~lambda:1.0 [| step 0.0 0.0 false; step 8.0 0.0 true |]
  in
  (* delta1 = 8; delta0 = 0 + 0.5*0 - 0 = 0; adv0 = 0 + 0.5*8 = 4 *)
  Alcotest.(check (float 1e-9)) "discounted" 4.0 adv.(0)

let test_gae_lambda_zero_is_td () =
  (* lambda = 0: advantage = one-step TD error. *)
  let adv, _ =
    Gae.advantages ~gamma:0.9 ~lambda:0.0
      [| step 1.0 2.0 false; step 0.0 3.0 true |]
  in
  Alcotest.(check (float 1e-9)) "td error" (1.0 +. (0.9 *. 3.0) -. 2.0) adv.(0)

let test_normalize () =
  let out = Gae.normalize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-9)) "mean 0" 0.0 (Array.fold_left ( +. ) 0.0 out /. 3.0);
  let var = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 out /. 3.0 in
  Alcotest.(check (float 1e-6)) "unit variance" 1.0 var

let test_normalize_empty () =
  Alcotest.(check int) "empty ok" 0 (Array.length (Gae.normalize [||]))

(* A tiny 2-armed bandit: PPO must learn to prefer the rewarding arm. *)

type bandit_sample = { b_obs : Tensor.t; b_action : int }

let bandit_policy mlp =
  {
    Ppo.evaluate =
      (fun tape samples ->
        let b = Array.length samples in
        let obs =
          Tensor.init [| b; 2 |] (fun i ->
              Tensor.get samples.(i / 2).b_obs (i mod 2))
        in
        let out = Layers.forward_mlp tape mlp (Autodiff.const tape obs) in
        (* columns 0-1: logits; column 2: value *)
        let logits = Autodiff.slice_cols tape out ~lo:0 ~hi:2 in
        let lp = Autodiff.log_softmax tape logits in
        let log_prob =
          Autodiff.gather_cols tape lp (Array.map (fun s -> s.b_action) samples)
        in
        let entropy =
          Autodiff.neg tape
            (Autodiff.sum_rows tape (Autodiff.mul tape (Autodiff.exp_ tape lp) lp))
        in
        let value =
          Autodiff.gather_cols tape
            (Autodiff.slice_cols tape out ~lo:2 ~hi:3)
            (Array.make b 0)
        in
        { Ppo.log_prob; entropy; value });
    params = Layers.mlp_params mlp;
  }

let test_ppo_learns_bandit () =
  let rng = Util.Rng.create 4242 in
  let mlp = Layers.mlp rng ~dims:[ 2; 16; 3 ] "bandit" in
  let policy = bandit_policy mlp in
  let config =
    {
      Ppo.default_config with
      Ppo.batch_size = 64;
      minibatch_size = 32;
      learning_rate = 3e-3;
    }
  in
  let optimizer = Optim.adam ~lr:config.Ppo.learning_rate (Layers.mlp_params mlp) in
  let obs = Tensor.of_array [| 2 |] [| 1.0; 0.0 |] in
  let prob_arm1 () =
    let tape = Autodiff.Tape.create () in
    let out =
      Layers.forward_mlp tape mlp
        (Autodiff.const tape (Tensor.of_array [| 1; 2 |] [| 1.0; 0.0 |]))
    in
    let lp = Autodiff.log_softmax tape (Autodiff.slice_cols tape out ~lo:0 ~hi:2) in
    exp (Tensor.get2 (Autodiff.value lp) 0 1)
  in
  for _iter = 1 to 30 do
    let transitions =
      Array.init config.Ppo.batch_size (fun _ ->
          let p1 = prob_arm1 () in
          let a = if Util.Rng.uniform rng < p1 then 1 else 0 in
          let reward = if a = 1 then 1.0 else 0.0 in
          let lp = log (Float.max 1e-9 (if a = 1 then p1 else 1.0 -. p1)) in
          {
            Ppo.sample = { b_obs = obs; b_action = a };
            reward;
            value = 0.0;
            log_prob = lp;
            terminal = true;
          })
    in
    ignore (Ppo.update config policy optimizer transitions ~rng)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "prefers rewarding arm (p=%.3f)" (prob_arm1 ()))
    true
    (prob_arm1 () > 0.8)

let test_ppo_stats_finite () =
  let rng = Util.Rng.create 5 in
  let mlp = Layers.mlp rng ~dims:[ 2; 8; 3 ] "s" in
  let policy = bandit_policy mlp in
  let optimizer = Optim.adam ~lr:1e-3 (Layers.mlp_params mlp) in
  let obs = Tensor.of_array [| 2 |] [| 0.5; 0.5 |] in
  let transitions =
    Array.init 16 (fun i ->
        {
          Ppo.sample = { b_obs = obs; b_action = i mod 2 };
          reward = float_of_int (i mod 3);
          value = 0.1;
          log_prob = log 0.5;
          terminal = i mod 4 = 3;
        })
  in
  let stats =
    Ppo.update
      { Ppo.default_config with Ppo.batch_size = 16; minibatch_size = 8 }
      policy optimizer transitions ~rng
  in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " finite") true (Float.is_finite v))
    [
      ("policy_loss", stats.Ppo.policy_loss);
      ("value_loss", stats.Ppo.value_loss);
      ("entropy", stats.Ppo.entropy_mean);
      ("kl", stats.Ppo.approx_kl);
      ("clip_fraction", stats.Ppo.clip_fraction);
      ("grad_norm", stats.Ppo.grad_norm);
    ]

let test_ppo_rejects_empty () =
  let rng = Util.Rng.create 5 in
  let mlp = Layers.mlp rng ~dims:[ 2; 4; 3 ] "e" in
  let policy = bandit_policy mlp in
  let optimizer = Optim.adam ~lr:1e-3 (Layers.mlp_params mlp) in
  Alcotest.(check bool) "raises" true
    (match Ppo.update Ppo.default_config policy optimizer [||] ~rng with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_default_config_matches_paper () =
  let c = Ppo.default_config in
  Alcotest.(check (float 1e-12)) "lr" 1e-3 c.Ppo.learning_rate;
  Alcotest.(check (float 1e-12)) "clip" 0.2 c.Ppo.clip_range;
  Alcotest.(check (float 1e-12)) "gamma" 0.99 c.Ppo.gamma;
  Alcotest.(check (float 1e-12)) "lambda" 0.95 c.Ppo.gae_lambda;
  Alcotest.(check int) "batch" 64 c.Ppo.batch_size;
  Alcotest.(check int) "epochs" 4 c.Ppo.epochs;
  Alcotest.(check (float 1e-12)) "vf coef" 0.5 c.Ppo.value_coef;
  Alcotest.(check (float 1e-12)) "entropy coef" 0.01 c.Ppo.entropy_coef

let qcheck_gae_zero_rewards_zero_value =
  QCheck.Test.make ~name:"gae of zero rewards and values is zero" ~count:50
    QCheck.(int_range 1 30)
    (fun n ->
      let steps = Array.init n (fun i -> step 0.0 0.0 (i = n - 1)) in
      let adv, ret = Gae.advantages ~gamma:0.99 ~lambda:0.95 steps in
      Array.for_all (fun a -> a = 0.0) adv && Array.for_all (fun r -> r = 0.0) ret)

let suite =
  [
    Alcotest.test_case "gae single step" `Quick test_gae_single_step;
    Alcotest.test_case "gae two steps" `Quick test_gae_two_step_episode;
    Alcotest.test_case "gae terminal resets" `Quick test_gae_terminal_resets;
    Alcotest.test_case "gae gamma discount" `Quick test_gae_gamma_discounting;
    Alcotest.test_case "gae lambda 0 is TD" `Quick test_gae_lambda_zero_is_td;
    Alcotest.test_case "normalize" `Quick test_normalize;
    Alcotest.test_case "normalize empty" `Quick test_normalize_empty;
    Alcotest.test_case "ppo learns bandit" `Slow test_ppo_learns_bandit;
    Alcotest.test_case "ppo stats finite" `Quick test_ppo_stats_finite;
    Alcotest.test_case "ppo rejects empty" `Quick test_ppo_rejects_empty;
    Alcotest.test_case "paper hyperparameters" `Quick test_default_config_matches_paper;
    QCheck_alcotest.to_alcotest qcheck_gae_zero_rewards_zero_value;
  ]
