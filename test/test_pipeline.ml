(* Linear pipelines: validation, greedy fusion, whole-chain scheduling. *)

let chain shape =
  [
    { Pipeline.stage_name = "add"; op = Linalg.add shape };
    { Pipeline.stage_name = "relu"; op = Linalg.relu shape };
  ]

let test_validate_ok () =
  Alcotest.(check bool) "chains" true (Pipeline.validate (chain [| 4; 8 |]) = Ok ())

let test_validate_rejects_mismatch () =
  let bad =
    [
      { Pipeline.stage_name = "a"; op = Linalg.add [| 4; 8 |] };
      { Pipeline.stage_name = "b"; op = Linalg.relu [| 8; 8 |] };
    ]
  in
  Alcotest.(check bool) "mismatch" true (Result.is_error (Pipeline.validate bad))

let test_validate_rejects_empty () =
  Alcotest.(check bool) "empty" true (Result.is_error (Pipeline.validate []))

let test_fuse_elementwise_merges () =
  let fused = Pipeline.fuse_elementwise (chain [| 4; 8 |]) in
  Alcotest.(check int) "one stage" 1 (List.length fused);
  Alcotest.(check string) "name" "add+relu" (List.hd fused).Pipeline.stage_name

let test_fuse_stops_at_reductions () =
  let p =
    [
      { Pipeline.stage_name = "bias"; op = Linalg.bias_add [| 4; 16 |] };
      { Pipeline.stage_name = "relu"; op = Linalg.relu [| 4; 16 |] };
      { Pipeline.stage_name = "mm"; op = Linalg.matmul ~m:4 ~n:8 ~k:16 () };
      { Pipeline.stage_name = "relu2"; op = Linalg.relu [| 4; 8 |] };
    ]
  in
  let fused = Pipeline.fuse_elementwise p in
  (* bias+relu fuse into the matmul's A operand as well (elementwise
     producer into reduction consumer is legal), then matmul cannot fuse
     into relu2 because matmul is not elementwise. *)
  Alcotest.(check (list string)) "stage names" [ "bias+relu+mm"; "relu2" ]
    (List.map (fun s -> s.Pipeline.stage_name) fused)

let test_chain_execution_matches_fused () =
  let shape = [| 4; 6 |] in
  let p = chain shape in
  let rng = Util.Rng.create 2 in
  let x = Test_helpers.buffer_of rng 24 in
  let y = Test_helpers.buffer_of rng 24 in
  let unfused =
    Pipeline.execute_reference p ~first_input:x ~extra_inputs:[ ("add/in1", y) ]
  in
  let fused = Pipeline.fuse_elementwise p in
  let fused_out =
    Pipeline.execute_reference fused ~first_input:x
      ~extra_inputs:[ ("add+relu/p_in1", y) ]
  in
  Test_helpers.check_close "fusion preserves chain" fused_out unfused

let test_deep_chain_execution () =
  (* add -> relu -> mul(.,w) -> exp, fused to a single op. *)
  let shape = [| 3; 5 |] in
  let p =
    [
      { Pipeline.stage_name = "add"; op = Linalg.add shape };
      { Pipeline.stage_name = "relu"; op = Linalg.relu shape };
      { Pipeline.stage_name = "mul"; op = Linalg.binary Linalg.Mul_k shape };
      { Pipeline.stage_name = "exp"; op = Linalg.unary Linalg.Exp_k shape };
    ]
  in
  let rng = Util.Rng.create 3 in
  let x = Test_helpers.buffer_of rng 15 in
  let y = Test_helpers.buffer_of rng 15 in
  let w = Test_helpers.buffer_of rng 15 in
  let expected =
    Pipeline.execute_reference p ~first_input:x
      ~extra_inputs:[ ("add/in1", y); ("mul/in1", w) ]
  in
  let fused = Pipeline.fuse_elementwise p in
  Alcotest.(check int) "single fused stage" 1 (List.length fused);
  let got =
    Pipeline.execute_reference fused ~first_input:x
      ~extra_inputs:
        [ ("add+relu+mul+exp/p_p_p_in1", y); ("add+relu+mul+exp/p_in1", w) ]
  in
  Test_helpers.check_close "deep fusion" got expected

let test_schedule_report () =
  let ev = Evaluator.create () in
  let p = chain [| 1024; 1024 |] in
  let report =
    Pipeline.schedule
      ~base_seconds:(Evaluator.base_seconds ev)
      ~scheduler:(fun op ->
        let r = Beam_search.search ev op in
        (r.Beam_search.best_schedule, r.Beam_search.best_speedup))
      p
  in
  Alcotest.(check int) "two stages" 2 (List.length report.Pipeline.stages);
  Alcotest.(check bool) "scheduling helps" true
    (report.Pipeline.total_scheduled < report.Pipeline.total_base);
  (* fusing first then scheduling beats scheduling the raw chain *)
  let fused_report =
    Pipeline.schedule
      ~base_seconds:(Evaluator.base_seconds ev)
      ~scheduler:(fun op ->
        let r = Beam_search.search ev op in
        (r.Beam_search.best_schedule, r.Beam_search.best_speedup))
      (Pipeline.fuse_elementwise p)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fused %.3g < unfused %.3g" fused_report.Pipeline.total_scheduled
       report.Pipeline.total_scheduled)
    true
    (fused_report.Pipeline.total_scheduled < report.Pipeline.total_scheduled)

let suite =
  [
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "validate mismatch" `Quick test_validate_rejects_mismatch;
    Alcotest.test_case "validate empty" `Quick test_validate_rejects_empty;
    Alcotest.test_case "fuse merges" `Quick test_fuse_elementwise_merges;
    Alcotest.test_case "fuse stops at reductions" `Quick test_fuse_stops_at_reductions;
    Alcotest.test_case "chain execution matches fused" `Quick
      test_chain_execution_matches_fused;
    Alcotest.test_case "deep chain execution" `Quick test_deep_chain_execution;
    Alcotest.test_case "schedule report" `Quick test_schedule_report;
  ]
