(* Tests for the loop-nest IR, its printer and its parser. *)

let lower op = Lower.to_loop_nest op

let test_lowering_structure () =
  let nest = lower (Test_helpers.small_matmul ()) in
  Alcotest.(check int) "loops" 3 (Loop_nest.n_loops nest);
  Alcotest.(check (array int)) "trips" [| 8; 12; 16 |] (Loop_nest.trip_counts nest);
  Alcotest.(check int) "buffers" 3 (List.length nest.Loop_nest.buffers);
  Alcotest.(check int) "one store" 1 (List.length nest.Loop_nest.body);
  Alcotest.(check (list (pair string (float 1e-9)))) "init C to 0"
    [ ("C", 0.0) ] nest.Loop_nest.inits

let test_validate_ok () =
  let nest = lower (Test_helpers.small_conv ()) in
  Alcotest.(check bool) "valid" true (Loop_nest.validate nest = Ok ())

let test_validate_catches_bad_buffer () =
  let nest = lower (Test_helpers.small_matmul ()) in
  let bad = { nest with Loop_nest.buffers = List.tl nest.Loop_nest.buffers } in
  Alcotest.(check bool) "invalid" true (Loop_nest.validate bad <> Ok ())

let test_validate_catches_oob_subscript () =
  let nest = lower (Test_helpers.small_matmul ()) in
  let bigger = { nest with Loop_nest.loops =
    Array.map (fun (l : Loop_nest.loop) -> { l with Loop_nest.ub = l.Loop_nest.ub * 2 })
      nest.Loop_nest.loops } in
  Alcotest.(check bool) "invalid" true (Loop_nest.validate bigger <> Ok ())

let test_loads_and_stores () =
  let nest = lower (Test_helpers.small_matmul ()) in
  (* matmul body: store C, loads C, A, B *)
  Alcotest.(check int) "loads" 3 (List.length (Loop_nest.loads_of_body nest));
  Alcotest.(check (list string)) "stores" [ "C" ]
    (List.map (fun (r : Loop_nest.mem_ref) -> r.Loop_nest.buf)
       (Loop_nest.stores_of_body nest))

let test_iteration_count () =
  let nest = lower (Test_helpers.small_matmul ()) in
  Alcotest.(check int) "8*12*16" 1536 (Loop_nest.iteration_count nest)

let roundtrip op sched =
  let st =
    match Sched_state.apply_all op sched with
    | Ok st -> st
    | Error msg -> Alcotest.failf "schedule failed: %s" msg
  in
  let text = Ir_printer.to_string st.Sched_state.nest in
  let reparsed = Ir_parser.parse text in
  let text2 = Ir_printer.to_string reparsed in
  Alcotest.(check string) "print/parse/print fixpoint" text text2

let test_roundtrip_plain () = roundtrip (Test_helpers.small_matmul ()) []

let test_roundtrip_transformed () =
  roundtrip (Test_helpers.small_matmul ())
    [ Schedule.Parallelize [| 4; 4; 0 |]; Schedule.Tile [| 2; 2; 4 |];
      Schedule.Swap 1; Schedule.Vectorize ]

let test_roundtrip_conv () =
  roundtrip (Test_helpers.small_conv ())
    [ Schedule.Tile [| 0; 2; 2; 2; 0; 0; 0 |] ]

let test_roundtrip_maxpool () =
  (* exercises the -infinity init value *)
  roundtrip (Test_helpers.small_maxpool ()) [ Schedule.Vectorize ]

let test_parser_rejects_garbage () =
  Alcotest.(check bool) "syntax error" true
    (match Ir_parser.parse_result "func @x { garbage }" with
    | Error _ -> true
    | Ok _ -> false)

let test_parser_rejects_nonzero_lb () =
  let src = "func @x { buffer y : [4] for %0 = 1 to 4 origin 0 { store y[%0] = 1.0 } }" in
  Alcotest.(check bool) "lb must be zero" true
    (Result.is_error (Ir_parser.parse_result src))

let test_parser_rejects_invalid_nest () =
  (* Well-formed syntax but out-of-bounds subscript: validation fires. *)
  let src =
    "func @x { buffer y : [2] for %0 = 0 to 4 origin 0 { store y[%0] = 1.0 } }"
  in
  Alcotest.(check bool) "invalid nest rejected" true
    (Result.is_error (Ir_parser.parse_result src))

let test_parser_accepts_negative_coeff () =
  let src =
    "func @x { buffer y : [4] for %0 = 0 to 4 origin 0 { store y[3 + -1*%0] = 1.0 } }"
  in
  match Ir_parser.parse_result src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok nest ->
      let out = Interp.run nest ~inputs:[] in
      Alcotest.(check (array (float 1e-9))) "reversed fill"
        [| 1.0; 1.0; 1.0; 1.0 |] (List.assoc "y" out)

let test_parsed_semantics_match () =
  (* Parsing the printed nest yields the same computation. *)
  let op = Test_helpers.small_matmul () in
  let nest = lower op in
  let reparsed = Ir_parser.parse (Ir_printer.to_string nest) in
  let rng = Util.Rng.create 5 in
  let inputs = Test_helpers.input_buffers rng op in
  let out1 = Interp.output_of nest (Interp.run nest ~inputs) in
  let out2 = Interp.output_of reparsed (Interp.run reparsed ~inputs) in
  Test_helpers.check_close "parsed semantics" out1 out2

let qcheck_roundtrip_random_schedules =
  (* Random tile/swap schedules on the small matmul always round-trip. *)
  QCheck.Test.make ~name:"printer/parser roundtrip on random schedules" ~count:60
    QCheck.(pair (int_range 0 5) (int_range 0 1))
    (fun (seed, vec) ->
      let rng = Util.Rng.create (seed * 31) in
      let op = Test_helpers.small_matmul () in
      let trips = [| 8; 12; 16 |] in
      let sizes =
        Array.map
          (fun t ->
            let divs = Array.of_list (Loop_transforms.divisors t) in
            let d = Util.Rng.choice rng divs in
            if d = t || Util.Rng.bool rng then 0 else d)
          trips
      in
      let sched =
        (if Array.exists (fun s -> s > 0) sizes then [ Schedule.Tile sizes ] else [])
        @ [ Schedule.Swap (Util.Rng.int rng 2) ]
        @ if vec = 1 then [ Schedule.Vectorize ] else []
      in
      match Sched_state.apply_all op sched with
      | Error _ -> QCheck.assume_fail ()
      | Ok st ->
          let text = Ir_printer.to_string st.Sched_state.nest in
          Ir_printer.to_string (Ir_parser.parse text) = text)

let suite =
  [
    Alcotest.test_case "lowering structure" `Quick test_lowering_structure;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "validate bad buffer" `Quick test_validate_catches_bad_buffer;
    Alcotest.test_case "validate OOB subscript" `Quick test_validate_catches_oob_subscript;
    Alcotest.test_case "loads and stores" `Quick test_loads_and_stores;
    Alcotest.test_case "iteration count" `Quick test_iteration_count;
    Alcotest.test_case "roundtrip plain" `Quick test_roundtrip_plain;
    Alcotest.test_case "roundtrip transformed" `Quick test_roundtrip_transformed;
    Alcotest.test_case "roundtrip conv" `Quick test_roundtrip_conv;
    Alcotest.test_case "roundtrip maxpool" `Quick test_roundtrip_maxpool;
    Alcotest.test_case "parser rejects garbage" `Quick test_parser_rejects_garbage;
    Alcotest.test_case "parser rejects lb!=0" `Quick test_parser_rejects_nonzero_lb;
    Alcotest.test_case "parser validates nests" `Quick test_parser_rejects_invalid_nest;
    Alcotest.test_case "parser negative coeff" `Quick test_parser_accepts_negative_coeff;
    Alcotest.test_case "parsed semantics match" `Quick test_parsed_semantics_match;
    QCheck_alcotest.to_alcotest qcheck_roundtrip_random_schedules;
  ]
