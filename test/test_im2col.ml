(* Im2col rewrite: GEMM dimensions and numerical equivalence. *)

let test_rewrite_dims () =
  let op = Test_helpers.small_conv () in
  (* batch 2, 8x8x3 input, 3x3 kernel, 4 filters, stride 1: oh=ow=6 *)
  match Im2col.rewrite op with
  | Error e -> Alcotest.fail e
  | Ok (gemm, `Packing_elements elems) ->
      Alcotest.(check (array int)) "gemm domain" [| 72; 4; 27 |] gemm.Linalg.domain;
      Alcotest.(check int) "packing elements" (72 * 27) elems

let test_rewrite_rejects_non_conv () =
  Alcotest.(check bool) "error" true
    (Result.is_error (Im2col.rewrite (Test_helpers.small_matmul ())))

let test_gemm_of () =
  let op = Test_helpers.small_conv () in
  match op.Linalg.kind with
  | Linalg.Conv2d p ->
      Alcotest.(check bool) "dims check" true (Im2col.gemm_of p ~m:72 ~n:4 ~k:27);
      Alcotest.(check bool) "wrong dims" false (Im2col.gemm_of p ~m:72 ~n:4 ~k:28)
  | _ -> Alcotest.fail "expected conv"

let equivalence_check p =
  let conv = Linalg.conv2d p in
  let rng = Util.Rng.create 99 in
  let image =
    Test_helpers.buffer_of rng (p.Linalg.batch * p.Linalg.in_h * p.Linalg.in_w * p.Linalg.channels)
  in
  let filter =
    Test_helpers.buffer_of rng
      (p.Linalg.kernel_h * p.Linalg.kernel_w * p.Linalg.channels * p.Linalg.filters)
  in
  let conv_out =
    Linalg.execute_reference conv [ ("input", image); ("filter", filter) ]
  in
  let gemm, _ = Result.get_ok (Im2col.rewrite conv) in
  let packed = Im2col.pack_input p image in
  let gemm_out = Linalg.execute_reference gemm [ ("A", packed); ("B", filter) ] in
  Test_helpers.check_close "im2col == conv" gemm_out conv_out

let test_equivalence_stride1 () =
  equivalence_check
    {
      Linalg.batch = 2;
      in_h = 6;
      in_w = 7;
      channels = 3;
      kernel_h = 3;
      kernel_w = 2;
      filters = 5;
      stride = 1;
    }

let test_equivalence_stride2 () =
  equivalence_check
    {
      Linalg.batch = 1;
      in_h = 9;
      in_w = 9;
      channels = 2;
      kernel_h = 3;
      kernel_w = 3;
      filters = 4;
      stride = 2;
    }

let test_equivalence_1x1_kernel () =
  equivalence_check
    {
      Linalg.batch = 1;
      in_h = 4;
      in_w = 4;
      channels = 8;
      kernel_h = 1;
      kernel_w = 1;
      filters = 16;
      stride = 1;
    }

let test_pack_rejects_bad_size () =
  let op = Test_helpers.small_conv () in
  match op.Linalg.kind with
  | Linalg.Conv2d p ->
      Alcotest.(check bool) "raises" true
        (match Im2col.pack_input p [| 1.0 |] with
        | exception Invalid_argument _ -> true
        | _ -> false)
  | _ -> Alcotest.fail "expected conv"

let qcheck_equivalence_random =
  QCheck.Test.make ~name:"im2col equivalence on random conv shapes" ~count:20
    QCheck.(
      quad (int_range 1 2) (int_range 3 8) (int_range 1 3) (int_range 1 4))
    (fun (batch, spatial, channels, filters) ->
      equivalence_check
        {
          Linalg.batch;
          in_h = spatial;
          in_w = spatial;
          channels;
          kernel_h = min 3 spatial;
          kernel_w = min 2 spatial;
          filters;
          stride = 1;
        };
      true)

let suite =
  [
    Alcotest.test_case "rewrite dims" `Quick test_rewrite_dims;
    Alcotest.test_case "rejects non-conv" `Quick test_rewrite_rejects_non_conv;
    Alcotest.test_case "gemm_of" `Quick test_gemm_of;
    Alcotest.test_case "equivalence stride 1" `Quick test_equivalence_stride1;
    Alcotest.test_case "equivalence stride 2" `Quick test_equivalence_stride2;
    Alcotest.test_case "equivalence 1x1" `Quick test_equivalence_1x1_kernel;
    Alcotest.test_case "pack rejects bad size" `Quick test_pack_rejects_bad_size;
    QCheck_alcotest.to_alcotest qcheck_equivalence_random;
  ]
