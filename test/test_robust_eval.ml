(* Fault injection, the retrying robust evaluator, and the environment's
   failure paths: degraded measurements, timeouts under both reward
   modes, and deterministic fault replay. *)

let cfg = Env_config.default

let matmul () = Linalg.matmul ~m:64 ~n:64 ~k:64 ()

let vectorized_state () =
  Result.get_ok (Sched_state.apply_all (matmul ()) [ Schedule.Vectorize ])

(* Tile-by-1 then parallelize-by-1 explodes the launch overhead: three
   orders of magnitude slower than base, guaranteed adaptive timeout. *)
let pathological_op () = Linalg.add [| 64; 64 |]

let pathological_schedule =
  [ Schedule.Tile [| 1; 1 |]; Schedule.Parallelize [| 1; 1 |] ]

(* --- Faults --- *)

let drain n f = List.init n (fun _ -> Faults.draw f)

let test_faults_replay_identical () =
  let seq seed =
    drain 200 (Faults.create ~config:(Faults.flaky ~rate:0.5 ()) ~seed ())
  in
  Alcotest.(check bool) "same seed, same faults" true (seq 11 = seq 11);
  Alcotest.(check bool) "different seed, different faults" true
    (seq 11 <> seq 12)

let test_faults_all_categories_fire () =
  let f = Faults.create ~config:(Faults.flaky ~rate:0.6 ()) ~seed:5 () in
  let seen = drain 2000 f in
  let has p = List.exists (fun x -> match x with Some y -> p y | None -> false) seen in
  Alcotest.(check bool) "timeouts" true
    (has (function Faults.Transient_timeout -> true | _ -> false));
  Alcotest.(check bool) "compile failures" true
    (has (function Faults.Compile_failure -> true | _ -> false));
  Alcotest.(check bool) "hangs" true
    (has (function Faults.Hang _ -> true | _ -> false));
  Alcotest.(check bool) "outliers above 1x" true
    (has (function Faults.Latency_outlier k -> k > 1.0 | _ -> false));
  Alcotest.(check bool) "clean calls too" true (List.mem None seen);
  Alcotest.(check int) "calls counted" 2000 (Faults.calls f)

let test_faults_crash_on_nth () =
  let f =
    Faults.create
      ~config:{ Faults.none with Faults.crash_on_call = Some 3 }
      ~seed:0 ()
  in
  let seen = drain 5 f in
  Alcotest.(check bool) "crashes exactly on call 3" true
    (seen = [ None; None; Some Faults.Crash; None; None ])

let test_faults_state_restore () =
  let f = Faults.create ~config:(Faults.flaky ~rate:0.5 ()) ~seed:3 () in
  ignore (drain 17 f);
  let saved = Faults.state f in
  let tail = drain 50 f in
  Faults.restore f saved;
  Alcotest.(check bool) "restored stream replays" true (drain 50 f = tail)

let test_faults_validate () =
  Alcotest.(check bool) "negative prob rejected" true
    (Result.is_error
       (Faults.validate { Faults.none with Faults.hang_prob = -0.1 }));
  Alcotest.(check bool) "overfull mass rejected" true
    (Result.is_error
       (Faults.validate
          { Faults.none with Faults.hang_prob = 0.6; outlier_prob = 0.6 }))

(* --- Robust evaluator --- *)

let test_robust_matches_plain_when_clean () =
  let ev = Evaluator.create () in
  let rob = Robust_evaluator.create ev in
  let st = vectorized_state () in
  let m = Robust_evaluator.measure rob st in
  Alcotest.(check bool) "exact" true (m.Robust_evaluator.quality = Robust_evaluator.Exact);
  Alcotest.(check int) "min repeats" 3 m.Robust_evaluator.samples;
  Alcotest.(check int) "no retries" 0 m.Robust_evaluator.retries;
  (* Noiseless samples are identical; the median is the plain value. *)
  Alcotest.(check (float 1e-15)) "agrees with plain evaluator"
    (Evaluator.state_seconds (Evaluator.create ()) st)
    m.Robust_evaluator.seconds

let test_robust_repeats_until_stable () =
  (* Heavy jitter: the adaptive loop should take more than min_repeats
     samples (up to the cap) before aggregating. *)
  let ev = Evaluator.create ~noise:0.4 ~noise_seed:9 () in
  let rob =
    Robust_evaluator.create
      ~config:
        { Robust_evaluator.default_config with Robust_evaluator.stability_rsd = 0.01 }
      ev
  in
  let m = Robust_evaluator.measure rob (vectorized_state ()) in
  Alcotest.(check int) "hits the repeat cap" 9 m.Robust_evaluator.samples;
  Alcotest.(check bool) "still exact" true
    (m.Robust_evaluator.quality = Robust_evaluator.Exact)

let test_robust_aggregation_tames_outliers () =
  (* 20% heavy (up to 50x) outliers: median aggregation keeps the
     typical measurement at the clean value, and the large majority of
     measurements within a small factor of it — where a mean would be
     dragged far off by every contaminated batch. *)
  let clean = Evaluator.state_seconds (Evaluator.create ()) (vectorized_state ()) in
  let faults =
    Faults.create
      ~config:
        { Faults.none with Faults.outlier_prob = 0.2; outlier_scale = 50.0 }
      ~seed:21 ()
  in
  let rob = Robust_evaluator.create ~faults (Evaluator.create ()) in
  let ratios =
    List.init 20 (fun _ ->
        (Robust_evaluator.measure rob (vectorized_state ())).Robust_evaluator.seconds
        /. clean)
  in
  Alcotest.(check (float 1e-9)) "typical measurement unaffected" 1.0
    (Util.Stats.median ratios);
  let tamed = List.length (List.filter (fun r -> r < 3.0) ratios) in
  Alcotest.(check bool)
    (Printf.sprintf "most measurements within 3x (%d/20)" tamed)
    true (tamed >= 16)

let test_robust_degrades_to_cost_model () =
  let ev = Evaluator.create () in
  let faults =
    Faults.create
      ~config:{ Faults.none with Faults.transient_timeout_prob = 1.0 }
      ~seed:1 ()
  in
  let rob = Robust_evaluator.create ~faults ev in
  let st = vectorized_state () in
  let m = Robust_evaluator.measure rob st in
  Alcotest.(check bool) "degraded" true
    (match m.Robust_evaluator.quality with
    | Robust_evaluator.Degraded _ -> true
    | Robust_evaluator.Exact -> false);
  Alcotest.(check int) "all retries spent"
    Robust_evaluator.default_config.Robust_evaluator.max_retries
    m.Robust_evaluator.retries;
  Alcotest.(check int) "no samples" 0 m.Robust_evaluator.samples;
  (* The fallback is the pure cost-model estimate — the plain
     evaluator's noiseless price for the same state. *)
  Alcotest.(check (float 1e-15)) "cost-model fallback"
    (Evaluator.state_seconds (Evaluator.create ()) st)
    m.Robust_evaluator.seconds;
  Alcotest.(check int) "counted" 1 (Robust_evaluator.degraded_count rob)

let test_robust_backoff_charges_budget () =
  let ev = Evaluator.create () in
  let faults =
    Faults.create
      ~config:{ Faults.none with Faults.compile_failure_prob = 1.0 }
      ~seed:1 ()
  in
  let cfg_r =
    {
      Robust_evaluator.default_config with
      Robust_evaluator.backoff_base = 1.0;
      backoff_factor = 2.0;
      max_retries = 4;
    }
  in
  let rob = Robust_evaluator.create ~config:cfg_r ~faults ev in
  let m = Robust_evaluator.measure rob (vectorized_state ()) in
  (* Compile failures charge nothing but the backoff pauses:
     1 + 2 + 4 + 8 = 15 simulated seconds. *)
  Alcotest.(check (float 1e-9)) "exponential backoff charged" 15.0
    m.Robust_evaluator.charged

let test_robust_recovers_from_crash () =
  let ev = Evaluator.create () in
  let faults =
    Faults.create
      ~config:{ Faults.none with Faults.crash_on_call = Some 1 }
      ~seed:4 ()
  in
  let rob = Robust_evaluator.create ~faults ev in
  let m = Robust_evaluator.measure rob (vectorized_state ()) in
  Alcotest.(check bool) "exact after crash recovery" true
    (m.Robust_evaluator.quality = Robust_evaluator.Exact);
  Alcotest.(check int) "one retry" 1 m.Robust_evaluator.retries

let test_robust_trace_replays_identically () =
  let run () =
    let faults =
      Faults.create ~config:(Faults.flaky ~rate:0.4 ()) ~seed:77 ()
    in
    let rob =
      Robust_evaluator.create ~faults (Evaluator.create ~noise:0.05 ~noise_seed:2 ())
    in
    for _ = 1 to 25 do
      ignore (Robust_evaluator.measure rob (vectorized_state ()))
    done;
    Robust_evaluator.trace rob
  in
  let a = run () and b = run () in
  Alcotest.(check int) "25 trace lines" 25 (List.length a);
  Alcotest.(check bool) "recovery trace identical across runs" true (a = b)

let test_base_cache_keys_by_shape () =
  (* Two ops sharing a name but differing in shape must not share a
     cached baseline. *)
  let ev = Evaluator.create () in
  let small = Linalg.matmul ~name:"shared" ~m:8 ~n:8 ~k:8 () in
  let big = Linalg.matmul ~name:"shared" ~m:256 ~n:256 ~k:256 () in
  let a = Evaluator.base_seconds ev small in
  let b = Evaluator.base_seconds ev big in
  Alcotest.(check bool) "distinct baselines" true (b > a *. 10.0);
  Alcotest.(check (float 1e-15)) "cache still hits" a
    (Evaluator.base_seconds ev small);
  Alcotest.(check bool) "digests differ" true
    (Linalg.digest small <> Linalg.digest big)

(* --- Environment failure paths under the robust evaluator --- *)

let robust_env ?(reward_mode = Env_config.Final) ?(rate = 0.3) ?(seed = 9) () =
  let faults = Faults.create ~config:(Faults.flaky ~rate ()) ~seed () in
  let robust = Robust_evaluator.create ~faults (Evaluator.create ()) in
  Env.create ~robust (Env_config.with_reward_mode reward_mode Env_config.default)

let test_env_timeout_reward_immediate () =
  let env = robust_env ~reward_mode:Env_config.Immediate ~rate:0.0 () in
  ignore (Env.reset env (pathological_op ()));
  ignore (Env.step env (Some (Schedule.Tile [| 1; 1 |])));
  let r = Env.step env (Some (Schedule.Parallelize [| 1; 1 |])) in
  Alcotest.(check bool) "timed out" true r.Env.timed_out;
  Alcotest.(check (float 1e-9)) "timeout penalty"
    cfg.Env_config.timeout_penalty r.Env.reward;
  Alcotest.(check bool) "terminal" true r.Env.terminal

let test_env_timeout_reward_final () =
  let env = robust_env ~reward_mode:Env_config.Final ~rate:0.0 () in
  ignore (Env.reset env (pathological_op ()));
  ignore (Env.step env (Some (Schedule.Tile [| 1; 1 |])));
  ignore (Env.step env (Some (Schedule.Parallelize [| 1; 1 |])));
  let r = Env.step env (Some Schedule.Vectorize) in
  Alcotest.(check bool) "timed out at the terminal measurement" true
    r.Env.timed_out;
  Alcotest.(check (float 1e-9)) "timeout penalty"
    cfg.Env_config.timeout_penalty r.Env.reward

let test_env_degraded_flagged () =
  (* A backend that always fails: every measured step must be flagged
     degraded with a typed Backend_failure, and the episode must still
     complete without an exception. *)
  let faults =
    Faults.create
      ~config:{ Faults.none with Faults.transient_timeout_prob = 1.0 }
      ~seed:2 ()
  in
  let robust = Robust_evaluator.create ~faults (Evaluator.create ()) in
  let env =
    Env.create ~robust
      (Env_config.with_reward_mode Env_config.Immediate Env_config.default)
  in
  ignore (Env.reset env (matmul ()));
  let r = Env.step env (Some (Schedule.Swap 0)) in
  Alcotest.(check bool) "degraded flag" true r.Env.degraded;
  (match r.Env.error with
  | Some (Env_error.Backend_failure f) ->
      Alcotest.(check int) "retries reported"
        Robust_evaluator.default_config.Robust_evaluator.max_retries
        f.Env_error.retries;
      Alcotest.(check bool) "op recorded" true
        (f.Env_error.op_name = (matmul ()).Linalg.op_name)
  | _ -> Alcotest.fail "expected a typed Backend_failure");
  Alcotest.(check int) "episode degraded count" 1 (Env.episode_degraded env);
  Alcotest.(check int) "cumulative degraded count" 1
    (Env.degraded_measurements env);
  ignore (Env.reset env (matmul ()));
  Alcotest.(check int) "episode counter resets" 0 (Env.episode_degraded env);
  Alcotest.(check int) "cumulative counter kept" 1
    (Env.degraded_measurements env)

let test_env_robust_charges_budget () =
  let env = robust_env ~reward_mode:Env_config.Immediate ~rate:0.0 () in
  ignore (Env.reset env (matmul ()));
  ignore (Env.step env (Some (Schedule.Swap 0)));
  (* One robust measurement = compile charge + >= min_repeats runs, so
     strictly more than the plain evaluator's single run would cost. *)
  let plain = Env.create (Env_config.with_reward_mode Env_config.Immediate cfg) in
  ignore (Env.reset plain (matmul ()));
  ignore (Env.step plain (Some (Schedule.Swap 0)));
  Alcotest.(check bool) "repeats cost simulated time" true
    (Env.measurement_seconds env > Env.measurement_seconds plain)

let qcheck_faulty_episodes_never_raise =
  QCheck.Test.make ~name:"episodes survive a 30% transient-failure backend"
    ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let env =
        robust_env
          ~reward_mode:
            (if seed mod 2 = 0 then Env_config.Immediate else Env_config.Final)
          ~rate:0.3 ~seed ()
      in
      let policy = Policy.create ~hidden:8 ~backbone_layers:1 rng Env_config.default in
      let op =
        Generator.random_op rng
          (Util.Rng.choice rng [| "matmul"; "conv2d"; "maxpool"; "add"; "relu" |])
      in
      let obs = ref (Env.reset env op) in
      let terminal = ref false in
      let steps = ref 0 in
      while not !terminal do
        let masks = Env.masks env in
        let action, _, _ = Policy.act rng policy ~obs:!obs ~masks in
        let r = Env.step_hierarchical env action in
        (* Degraded steps must carry their typed error and vice versa. *)
        if r.Env.degraded <> (match r.Env.error with
                              | Some (Env_error.Backend_failure _) -> true
                              | _ -> false)
        then QCheck.Test.fail_report "degraded flag and error out of sync";
        obs := r.Env.obs;
        incr steps;
        terminal := r.Env.terminal
      done;
      !steps <= Env_config.default.Env_config.tau)

let suite =
  [
    Alcotest.test_case "faults replay identically" `Quick test_faults_replay_identical;
    Alcotest.test_case "all fault categories fire" `Quick
      test_faults_all_categories_fire;
    Alcotest.test_case "crash on nth call" `Quick test_faults_crash_on_nth;
    Alcotest.test_case "fault state restore" `Quick test_faults_state_restore;
    Alcotest.test_case "fault config validation" `Quick test_faults_validate;
    Alcotest.test_case "clean robust = plain" `Quick
      test_robust_matches_plain_when_clean;
    Alcotest.test_case "repeats until stable" `Quick test_robust_repeats_until_stable;
    Alcotest.test_case "aggregation tames outliers" `Quick
      test_robust_aggregation_tames_outliers;
    Alcotest.test_case "degrades to cost model" `Quick
      test_robust_degrades_to_cost_model;
    Alcotest.test_case "backoff charges budget" `Quick
      test_robust_backoff_charges_budget;
    Alcotest.test_case "recovers from crash" `Quick test_robust_recovers_from_crash;
    Alcotest.test_case "trace replays identically" `Quick
      test_robust_trace_replays_identically;
    Alcotest.test_case "base cache keyed by shape" `Quick
      test_base_cache_keys_by_shape;
    Alcotest.test_case "timeout reward (Immediate)" `Quick
      test_env_timeout_reward_immediate;
    Alcotest.test_case "timeout reward (Final)" `Quick test_env_timeout_reward_final;
    Alcotest.test_case "degraded flagged in trace" `Quick test_env_degraded_flagged;
    Alcotest.test_case "robust charges budget" `Quick test_env_robust_charges_budget;
    QCheck_alcotest.to_alcotest qcheck_faulty_episodes_never_raise;
  ]
