(* Masking rules and stepwise schedule application (paper §3.1.1). *)

let test_init () =
  let op = Test_helpers.small_matmul () in
  let st = Sched_state.init op in
  Alcotest.(check int) "3 point loops" 3 (Sched_state.n_point_loops st);
  Alcotest.(check (array int)) "trips" [| 8; 12; 16 |] (Sched_state.point_trip_counts st);
  Alcotest.(check bool) "not done" false (Sched_state.is_done st);
  Alcotest.(check (list string)) "empty schedule" []
    (List.map Schedule.transformation_name st.Sched_state.applied)

let apply_exn st tr = Result.get_ok (Sched_state.apply st tr)

let test_parallelize_once () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  Alcotest.(check bool) "can parallelize" true (Sched_state.can_parallelize st);
  let st = apply_exn st (Schedule.Parallelize [| 4; 4; 0 |]) in
  Alcotest.(check bool) "not twice" false (Sched_state.can_parallelize st);
  Alcotest.(check bool) "apply rejects" true
    (Result.is_error (Sched_state.apply st (Schedule.Parallelize [| 2; 0; 0 |])))

let test_parallelize_reduction_rejected () =
  (* k (dim 2) is a reduction dim of matmul. *)
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  Alcotest.(check bool) "reduction rejected" true
    (Result.is_error (Sched_state.apply st (Schedule.Parallelize [| 0; 0; 4 |])));
  Alcotest.(check bool) "loop 0 parallelizable" true
    (Sched_state.parallelizable_loop st 0);
  Alcotest.(check bool) "loop 2 not" false (Sched_state.parallelizable_loop st 2)

let test_vectorize_terminal () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let st = apply_exn st Schedule.Vectorize in
  Alcotest.(check bool) "done" true (Sched_state.is_done st);
  Alcotest.(check bool) "nothing after" true
    (Result.is_error (Sched_state.apply st (Schedule.Swap 0)))

let test_im2col_only_conv () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  Alcotest.(check bool) "masked" false (Sched_state.can_im2col st);
  Alcotest.(check bool) "apply rejects" true
    (Result.is_error (Sched_state.apply st Schedule.Im2col))

let test_im2col_must_be_first () =
  let st = Sched_state.init (Test_helpers.small_conv ()) in
  Alcotest.(check bool) "allowed initially" true (Sched_state.can_im2col st);
  let st = apply_exn st (Schedule.Swap 0) in
  Alcotest.(check bool) "not after a transform" false (Sched_state.can_im2col st);
  Alcotest.(check bool) "apply rejects" true
    (Result.is_error (Sched_state.apply st Schedule.Im2col))

let test_im2col_changes_op () =
  let st = Sched_state.init (Test_helpers.small_conv ()) in
  let st = apply_exn st Schedule.Im2col in
  Alcotest.(check string) "now a matmul" "matmul" (Linalg.kind_name st.Sched_state.op);
  Alcotest.(check int) "3 loops" 3 (Sched_state.n_point_loops st);
  Alcotest.(check bool) "packing recorded" true (st.Sched_state.packing_elements > 0);
  Alcotest.(check string) "original preserved" "conv2d"
    (Linalg.kind_name st.Sched_state.original)

let test_point_trips_after_tiling () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let st = apply_exn st (Schedule.Tile [| 4; 6; 0 |]) in
  Alcotest.(check (array int)) "point sizes" [| 4; 6; 16 |]
    (Sched_state.point_trip_counts st)

let test_valid_tile_sizes () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  (* trips 8, 12, 16; menu 0,4,6,16 *)
  let v = Sched_state.valid_tile_sizes st ~menu:[| 0; 4; 6; 16 |] in
  Alcotest.(check (array bool)) "loop 0 (8)" [| true; true; false; false |] v.(0);
  Alcotest.(check (array bool)) "loop 1 (12)" [| true; true; true; false |] v.(1);
  Alcotest.(check (array bool)) "loop 2 (16)" [| true; true; false; true |] v.(2)

let test_apply_all_error_propagates () =
  let op = Test_helpers.small_matmul () in
  Alcotest.(check bool) "error" true
    (Result.is_error
       (Sched_state.apply_all op [ Schedule.Tile [| 5; 0; 0 |] ]))

let test_apply_all_records_order () =
  let op = Test_helpers.small_matmul () in
  let st =
    Result.get_ok
      (Sched_state.apply_all op [ Schedule.Swap 0; Schedule.Tile [| 2; 2; 2 |] ])
  in
  Alcotest.(check string) "order kept" "S(0) T(2,2,2)"
    (Schedule.to_string st.Sched_state.applied)

let test_tau_independent () =
  (* Sched_state itself has no step cap; that's the env's tau. *)
  let op = Test_helpers.small_matmul () in
  let st =
    List.fold_left
      (fun st tr -> apply_exn st tr)
      (Sched_state.init op)
      [
        Schedule.Swap 0; Schedule.Swap 1; Schedule.Swap 0; Schedule.Swap 1;
        Schedule.Swap 0; Schedule.Swap 1; Schedule.Swap 0; Schedule.Swap 1;
      ]
  in
  Alcotest.(check int) "8 steps recorded" 8 (List.length st.Sched_state.applied)

let suite =
  [
    Alcotest.test_case "init" `Quick test_init;
    Alcotest.test_case "parallelize once" `Quick test_parallelize_once;
    Alcotest.test_case "parallelize reduction rejected" `Quick
      test_parallelize_reduction_rejected;
    Alcotest.test_case "vectorize terminal" `Quick test_vectorize_terminal;
    Alcotest.test_case "im2col only conv" `Quick test_im2col_only_conv;
    Alcotest.test_case "im2col must be first" `Quick test_im2col_must_be_first;
    Alcotest.test_case "im2col changes op" `Quick test_im2col_changes_op;
    Alcotest.test_case "point trips after tiling" `Quick test_point_trips_after_tiling;
    Alcotest.test_case "valid tile sizes" `Quick test_valid_tile_sizes;
    Alcotest.test_case "apply_all error" `Quick test_apply_all_error_propagates;
    Alcotest.test_case "apply_all records order" `Quick test_apply_all_records_order;
    Alcotest.test_case "no step cap in state" `Quick test_tau_independent;
  ]
