(* Staged static-analysis suite: Bounds interval analysis, Footprint
   levels / regions / miss prediction (cross-checked against the
   trace-driven cache simulator), the post-transform Verifier (with
   mutation tests) and the differential Sanitizer (soundness over the
   randomized corpus, and teeth on a deliberately broken transform). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sched s =
  match Schedule.of_string s with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "bad schedule %s: %s" s e

let apply_exn op s =
  match Sched_state.apply_all op (sched s) with
  | Ok st -> st
  | Error e -> Alcotest.failf "schedule %s rejected: %s" s e

(* ------------------------------------------------------------------ *)
(* Bounds                                                             *)
(* ------------------------------------------------------------------ *)

let test_interval_exact () =
  let rng = Util.Rng.create 7 in
  for _ = 1 to 200 do
    let n = 1 + Util.Rng.int rng 3 in
    let ubs = Array.init n (fun _ -> 1 + Util.Rng.int rng 4) in
    let e =
      {
        Affine.coeffs = Array.init n (fun _ -> Util.Rng.int rng 7 - 3);
        const = Util.Rng.int rng 9 - 4;
      }
    in
    (* Brute force over the whole box. *)
    let lo = ref max_int and hi = ref min_int in
    let rec enum iters k =
      if k = n then begin
        let v = Affine.eval_expr e iters in
        lo := min !lo v;
        hi := max !hi v
      end
      else
        for x = 0 to ubs.(k) - 1 do
          iters.(k) <- x;
          enum iters (k + 1)
        done
    in
    enum (Array.make n 0) 0;
    let iv = Bounds.expr_interval ~trip_counts:ubs e in
    check_int "lo" !lo iv.Bounds.lo;
    check_int "hi" !hi iv.Bounds.hi
  done

let test_bounds_matches_validate () =
  let rng = Util.Rng.create 11 in
  let checked_ok = ref 0 and checked_bad = ref 0 in
  for _ = 1 to 150 do
    let nest = Test_dependence.gen_nest rng in
    (* The generator sizes buffers to fit every subscript, so both the
       validator and the interval analysis must accept. *)
    check "fresh nest validates" true (Loop_nest.validate nest = Ok ());
    check "fresh nest bounds-sound" true
      (Bounds.is_sound (Bounds.analyze nest));
    incr checked_ok;
    (* Shrink the output buffer's first extent below a use: validate
       and Bounds must agree on the verdict, and the violation must
       name the buffer. *)
    let shape = Array.copy (Loop_nest.buffer_shape nest "O") in
    if shape.(0) > 1 then begin
      shape.(0) <- shape.(0) - 1;
      let broken =
        {
          nest with
          Loop_nest.buffers =
            List.map
              (fun (b, s) -> if b = "O" then (b, shape) else (b, s))
              nest.Loop_nest.buffers;
        }
      in
      let report = Bounds.analyze broken in
      let validate_rejects = Loop_nest.validate broken <> Ok () in
      check "bounds iff validate" validate_rejects
        (not (Bounds.is_sound report));
      if validate_rejects then begin
        incr checked_bad;
        check "violation names the buffer" true
          (List.exists
             (fun (v : Bounds.violation) -> v.Bounds.v_buf = "O")
             report.Bounds.violations)
      end
    end
  done;
  check "saw accepting nests" true (!checked_ok > 100);
  check "saw rejecting nests" true (!checked_bad > 20)

let test_bounds_after_schedules () =
  let schedules =
    [
      "T(2,2,2)";
      "T(4,4,4) S(1)";
      "I(1,0,2)";
      "P(2,0,0) T(2,2,2) V";
      "T(8,12,16) S(1) V";
      "U(2)";
      "T(2,6,4) I(2,0,1) U(2) V";
    ]
  in
  let op = Test_helpers.small_matmul () in
  List.iter
    (fun s ->
      let st = apply_exn op s in
      check (s ^ " bounds-sound") true
        (Bounds.is_sound (Bounds.analyze st.Sched_state.nest)))
    schedules

(* ------------------------------------------------------------------ *)
(* Footprint                                                          *)
(* ------------------------------------------------------------------ *)

let test_footprint_matmul () =
  (* matmul 4x5x6: A 4x6, B 6x5, C 4x5.
     depth 0: everything = 24 + 30 + 20         = 74
     depth 1 (j,k vary): A row 6, B 30, C row 5 = 41
     depth 2 (k varies): A 6, B col 6, C cell   = 13
     depth 3 (body):     one cell of each       = 3 *)
  let nest = Lower.to_loop_nest (Linalg.matmul ~m:4 ~n:5 ~k:6 ()) in
  let fp = Footprint.analyze nest in
  check_int "levels" 4 (Array.length fp.Footprint.levels);
  List.iteri
    (fun d expected ->
      check_int "level" expected (Footprint.level_elements fp d))
    [ 74; 41; 13; 3 ];
  check_int "reuse loop 0" 41 (Footprint.reuse_distance fp 0);
  check_int "reuse loop 2" 3 (Footprint.reuse_distance fp 2)

let exact_distinct (nest : Loop_nest.t) inputs =
  let seen = Hashtbl.create 256 in
  let on_access (a : Interp.access) =
    Hashtbl.replace seen (a.Interp.acc_buf, a.Interp.acc_index) ()
  in
  ignore (Interp.run ~on_access nest ~inputs);
  Hashtbl.length seen

let test_footprint_over_approximates () =
  let rng = Util.Rng.create 23 in
  let exact_hits = ref 0 in
  for _ = 1 to 120 do
    let nest = Test_dependence.gen_nest rng in
    let fp = Footprint.analyze nest in
    let exact = exact_distinct nest (Test_dependence.input_data rng nest) in
    let approx = Footprint.level_elements fp 0 in
    check "footprint >= exact distinct elements" true (approx >= exact);
    if approx = exact then incr exact_hits
  done;
  check "sometimes exact on the random corpus" true (!exact_hits > 0);
  (* On a dense matmul the bounding-box count is exact. *)
  let op = Test_helpers.small_matmul () in
  let nest = Lower.to_loop_nest op in
  let inputs = Test_helpers.input_buffers (Util.Rng.create 3) op in
  check_int "matmul exact" (exact_distinct nest inputs)
    (Footprint.level_elements (Footprint.analyze nest) 0)

let l1_misses nest =
  match Cache_sim.simulate_nest ~machine:Machine.tiny_test_machine nest with
  | Error e -> Alcotest.failf "simulate_nest: %s" e
  | Ok (_, levels) -> (
      match levels with
      | (l1 : Cache_sim.level_stats) :: _ -> l1.Cache_sim.misses
      | [] -> Alcotest.fail "no cache levels")

let test_footprint_tracks_cache_sim () =
  (* Across schedules of one op, whenever the analytic working-set
     model predicts a clear (> 2.5x) miss separation, the trace-driven
     simulator must rank the two schedules the same way. Finer
     separations are not asserted: the element-granular bounding-box
     model ignores line utilization (a 4-wide tile touches as many
     16-element lines as an 8-wide one), which can flip close calls. *)
  let machine = Machine.tiny_test_machine in
  let cache_elements =
    machine.Machine.l1.Machine.size_bytes / machine.Machine.elem_bytes
  in
  let line_elements = Machine.line_elems machine machine.Machine.l1 in
  let op = Linalg.matmul ~m:32 ~n:32 ~k:32 () in
  let candidates = [ ""; "T(8,8,8)"; "T(4,4,4)" ] in
  let measured =
    List.map
      (fun s ->
        let nest =
          if s = "" then Lower.to_loop_nest op
          else (apply_exn op s).Sched_state.nest
        in
        let fp = Footprint.analyze nest in
        let predicted =
          Footprint.predicted_misses fp
            ~trip_counts:(Loop_nest.trip_counts nest)
            ~cache_elements ~line_elements
        in
        (s, predicted, l1_misses nest))
      candidates
  in
  List.iter
    (fun (sa, pa, ma) ->
      List.iter
        (fun (sb, pb, mb) ->
          if pa > 2.5 *. pb then
            check
              (Printf.sprintf "sim agrees: %S (pred %.0f) > %S (pred %.0f)" sa
                 pa sb pb)
              true (ma > mb))
        measured)
    measured;
  (* Tiling at 8 must be predicted and simulated to beat untiled. *)
  let find s = List.find (fun (s', _, _) -> s' = s) measured in
  let _, p_plain, m_plain = find "" in
  let _, p_tiled, m_tiled = find "T(8,8,8)" in
  check "tiling predicted better" true (p_tiled *. 2.0 <= p_plain);
  check "tiling simulated better" true (m_tiled < m_plain)

let test_producer_consumer () =
  let mk name loops body buffers =
    { Loop_nest.name; loops; body; buffers; inits = [] }
  in
  let loop ub = { Loop_nest.ub; kind = Loop_nest.Seq; origin = 0 } in
  let ref1 buf e = { Loop_nest.buf; idx = [| e |] } in
  let producer =
    mk "prod" [| loop 8 |]
      [ Loop_nest.Store (ref1 "B" (Affine.dim 1 0), Loop_nest.Const 1.0) ]
      [ ("B", [| 8 |]) ]
  in
  let consumer reads_ub shape offset =
    mk "cons" [| loop reads_ub |]
      [
        Loop_nest.Store
          ( ref1 "C" (Affine.dim 1 0),
            Loop_nest.Load
              (ref1 "B" (Affine.expr ~const:offset 1 [ (0, 1) ])) );
      ]
      [ ("B", [| shape |]); ("C", [| reads_ub |]) ]
  in
  let verdict c =
    match Footprint.producer_consumer ~producer ~consumer:c with
    | [ v ] -> v.Footprint.pc_overlap
    | l -> Alcotest.failf "expected one shared buffer, got %d" (List.length l)
  in
  check "covered" true (verdict (consumer 8 8 0) = Footprint.Covers);
  check "partial" true (verdict (consumer 10 10 0) = Footprint.Partial);
  check "disjoint" true (verdict (consumer 5 13 8) = Footprint.Disjoint)

(* ------------------------------------------------------------------ *)
(* Verifier                                                           *)
(* ------------------------------------------------------------------ *)

(* A deliberately buggy interchange: permutes the loop array but leaves
   every subscript expressed over the old positions — exactly the
   transform-author mistake the verifier exists to catch. On a
   rectangular nest the stale subscripts index out of range. *)
let buggy_interchange (nest : Loop_nest.t) =
  let n = Loop_nest.n_loops nest in
  let loops = Array.copy nest.Loop_nest.loops in
  let tmp = loops.(0) in
  loops.(0) <- loops.(n - 1);
  loops.(n - 1) <- tmp;
  { nest with Loop_nest.loops }

let test_verifier_mutations () =
  let op = Test_helpers.small_matmul () in
  let nest = Lower.to_loop_nest op in
  check "clean nest passes" true
    (Verifier.check ~expected_digest:(Loop_nest.digest nest) nest = Ok ());
  (* Mutation 1: broken interchange -> out-of-bounds accesses. *)
  let broken = buggy_interchange nest in
  (match Verifier.check broken with
  | Ok () -> Alcotest.fail "verifier accepted a broken interchange"
  | Error e ->
      check "reports validate or bounds stage" true
        (String.length e >= 8
        && (String.sub e 0 8 = "validate" || String.sub e 0 6 = "bounds")));
  (* Mutation 2: digest bookkeeping drift. *)
  (match Verifier.check ~expected_digest:"deadbeef" nest with
  | Ok () -> Alcotest.fail "verifier accepted a stale digest"
  | Error e -> check "reports digest drift" true (String.sub e 0 6 = "digest"));
  (* The counted entry point raises and counts. *)
  Verifier.reset_stats ();
  (try
     Verifier.run broken;
     Alcotest.fail "Verifier.run did not raise"
   with Verifier.Violation _ -> ());
  let s = Verifier.stats () in
  check_int "one check" 1 s.Verifier.checks;
  check_int "one violation" 1 s.Verifier.violations

let test_verifier_in_apply () =
  Verifier.reset_stats ();
  Verifier.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Verifier.set_enabled false;
      Verifier.reset_stats ())
    (fun () ->
      let op = Test_helpers.small_conv () in
      ignore (apply_exn op "T(0,2,2,2,0,0,0) V");
      ignore (apply_exn op "C T(8,2,3) S(1) V");
      let s = Verifier.stats () in
      check "apply ran a verifier check per transformation" true
        (s.Verifier.checks >= 6);
      check_int "no violations on legal schedules" 0 s.Verifier.violations)

(* ------------------------------------------------------------------ *)
(* Sanitizer                                                          *)
(* ------------------------------------------------------------------ *)

let test_sanitizer_sound_on_legal_transforms () =
  let rng = Util.Rng.create 41 in
  let ran = ref 0 in
  for _ = 1 to 120 do
    let nest = Test_dependence.gen_nest rng in
    let leg = Legality.analyze nest in
    let n = Loop_nest.n_loops nest in
    let candidates =
      List.filter_map
        (fun r -> match r with Ok t -> Some t | Error _ -> None)
        (List.concat
           [
             (if Legality.can_tile leg ~band_start:0 then
                [
                  Loop_transforms.tile
                    (Array.init n (fun k ->
                         let ub = nest.Loop_nest.loops.(k).Loop_nest.ub in
                         if ub mod 2 = 0 then 2 else 0))
                    nest;
                ]
              else []);
             List.init (max 0 (n - 1)) (fun k ->
                 if Legality.can_interchange leg k then
                   Loop_transforms.swap_adjacent k nest
                 else Error "not legal");
             (if Legality.can_vectorize leg then
                [ Loop_transforms.vectorize nest ]
              else []);
             (if
                Legality.can_unroll leg
                && n > 0
                && nest.Loop_nest.loops.(n - 1).Loop_nest.ub mod 2 = 0
              then [ Loop_transforms.unroll 2 nest ]
              else []);
           ])
    in
    List.iter
      (fun candidate ->
        match Sanitizer.check ~reference:nest ~candidate with
        | Sanitizer.Mismatch m ->
            Alcotest.failf
              "sanitizer fired on a Legality-approved transform: %s" m
        | Sanitizer.Matched -> incr ran
        | Sanitizer.Skipped _ -> ())
      candidates
  done;
  Sanitizer.reset_stats ();
  check "differential actually executed" true (!ran > 100)

let test_sanitizer_full_schedules () =
  let cases =
    [
      (Test_helpers.small_matmul (), "T(2,2,2)");
      (Test_helpers.small_matmul (), "T(4,4,4) I(1,0,2) U(2) V");
      (Test_helpers.small_matmul (), "P(2,2,0) T(2,2,2) S(1) V");
      (Test_helpers.small_conv (), "C");
      (Test_helpers.small_conv (), "C T(8,2,3) S(1) V");
      (Test_helpers.small_conv (), "T(0,2,2,2,0,0,0) V");
      (Test_helpers.small_maxpool (), "T(0,2,2,2,0,0) V");
    ]
  in
  List.iter
    (fun ((op : Linalg.t), s) ->
      let st = apply_exn op s in
      match Differential.sanitize_state st with
      | Some Sanitizer.Matched -> ()
      | Some (Sanitizer.Mismatch m) ->
          Alcotest.failf "%s on %s: differential violation: %s" s
            op.Linalg.op_name m
      | Some (Sanitizer.Skipped r) ->
          Alcotest.failf "%s on %s unexpectedly skipped: %s" s
            op.Linalg.op_name r
      | None ->
          Alcotest.failf "%s on %s: pair already seen or nothing to do" s
            op.Linalg.op_name)
    cases;
  Sanitizer.reset_stats ()

(* Rewrite only the reduction subscript of the loads of one buffer —
   a targeted miscompile. (A uniform rewrite of every occurrence of an
   iterator would just reindex the loop and stay semantics-preserving,
   which is exactly why the sanitizer must execute, not pattern-match.) *)
let reverse_a_loads (nest : Loop_nest.t) =
  let k_ub = nest.Loop_nest.loops.(2).Loop_nest.ub in
  let rev (e : Affine.expr) =
    {
      Affine.coeffs = Array.map (fun c -> -c) e.Affine.coeffs;
      const = k_ub - 1 - e.Affine.const;
    }
  in
  let rec fix (e : Loop_nest.sexpr) =
    match e with
    | Loop_nest.Load ({ Loop_nest.buf = "A"; idx } as r) ->
        let idx = Array.copy idx in
        idx.(1) <- rev idx.(1);
        Loop_nest.Load { r with Loop_nest.idx }
    | Loop_nest.Load _ | Loop_nest.Const _ -> e
    | Loop_nest.Binop (b, x, y) -> Loop_nest.Binop (b, fix x, fix y)
    | Loop_nest.Unop (u, x) -> Loop_nest.Unop (u, fix x)
  in
  {
    nest with
    Loop_nest.body =
      List.map
        (fun (Loop_nest.Store (r, e)) -> Loop_nest.Store (r, fix e))
        nest.Loop_nest.body;
  }

let test_sanitizer_catches_miscompile () =
  (* In-bounds but wrong: A[i,k] becomes A[i,K-1-k] while B keeps
     B[k,j]. The structural verifier passes (everything stays in
     range); only the differential check can catch it — the two layers
     cover complementary failure modes. *)
  let op = Test_helpers.small_matmul () in
  let nest = Lower.to_loop_nest op in
  let mutant = reverse_a_loads nest in
  check "mutant is structurally fine" true (Verifier.check mutant = Ok ());
  (match Sanitizer.check ~reference:nest ~candidate:mutant with
  | Sanitizer.Mismatch _ -> ()
  | o ->
      Alcotest.failf "sanitizer missed a miscompile: %s"
        (Sanitizer.outcome_to_string o));
  (* Budget: an over-budget pair is skipped, not executed. *)
  let old = Sanitizer.budget () in
  Sanitizer.set_budget 4;
  Fun.protect
    ~finally:(fun () ->
      Sanitizer.set_budget old;
      Sanitizer.reset_stats ())
    (fun () ->
      match Sanitizer.check ~reference:nest ~candidate:mutant with
      | Sanitizer.Skipped _ -> ()
      | o ->
          Alcotest.failf "expected a budget skip, got %s"
            (Sanitizer.outcome_to_string o))

let test_sanitizer_stats () =
  Sanitizer.reset_stats ();
  let nest = Lower.to_loop_nest (Linalg.matmul ~m:2 ~n:2 ~k:2 ()) in
  (match Sanitizer.check ~reference:nest ~candidate:nest with
  | Sanitizer.Matched -> ()
  | o -> Alcotest.failf "identity pair: %s" (Sanitizer.outcome_to_string o));
  ignore (Sanitizer.skip "test");
  let s = Sanitizer.stats () in
  check_int "runs" 1 s.Sanitizer.runs;
  check_int "skips" 1 s.Sanitizer.skips;
  check_int "violations" 0 s.Sanitizer.violations;
  (* fresh_pair admits each digest pair exactly once. *)
  let d = Loop_nest.digest nest in
  let other = Loop_nest.digest (buggy_interchange nest) in
  check "first sighting" true
    (Sanitizer.fresh_pair ~reference:d ~candidate:other);
  check "second sighting" false
    (Sanitizer.fresh_pair ~reference:d ~candidate:other);
  Sanitizer.reset_stats ()

(* ------------------------------------------------------------------ *)
(* Observation features and lint satellites                           *)
(* ------------------------------------------------------------------ *)

let test_footprint_observation () =
  let base = Env_config.default in
  let cfg = Env_config.with_footprint_features true base in
  check_int "obs_dim grows by 2N"
    (Env_config.obs_dim base + (2 * base.Env_config.n_max))
    (Env_config.obs_dim cfg);
  let env = Env.create cfg in
  let obs = Env.reset env (Test_helpers.small_matmul ()) in
  check_int "observation length" (Env_config.obs_dim cfg) (Array.length obs);
  let block =
    Array.sub obs (Env_config.obs_dim base) (2 * base.Env_config.n_max)
  in
  check "footprint block carries signal" true
    (Array.exists (fun v -> v > 0.0) block);
  check "footprint block finite and nonnegative" true
    (Array.for_all (fun v -> Float.is_finite v && v >= 0.0) block)

let has_warning_prefix prefix diags =
  List.exists
    (fun (d : Nest_lint.diagnostic) ->
      d.Nest_lint.severity = Nest_lint.Warning
      && String.length d.Nest_lint.message >= String.length prefix
      && String.sub d.Nest_lint.message 0 (String.length prefix) = prefix)
    diags

let test_lint_rules () =
  let loop ub origin = { Loop_nest.ub; kind = Loop_nest.Seq; origin } in
  let dim2 k = Affine.dim 2 k in
  (* Loop 1 unused by any access. *)
  let unused =
    {
      Loop_nest.name = "unused";
      loops = [| loop 4 0; loop 3 1 |];
      body =
        [
          Loop_nest.Store
            ( { Loop_nest.buf = "O"; idx = [| dim2 0 |] },
              Loop_nest.Binop
                ( Linalg.Add,
                  Loop_nest.Load { Loop_nest.buf = "A"; idx = [| dim2 0 |] },
                  Loop_nest.Const 1.0 ) );
        ];
      buffers = [ ("O", [| 4 |]); ("A", [| 4 |]) ];
      inits = [];
    }
  in
  check "unused loop index warned" true
    (has_warning_prefix "unused loop index" (Nest_lint.run unused));
  (* Loop 1 feeds the load but not the store, no accumulator: each of
     its iterations overwrites the previous one's result. *)
  let shadowed =
    {
      unused with
      Loop_nest.name = "shadowed";
      body =
        [
          Loop_nest.Store
            ( { Loop_nest.buf = "O"; idx = [| dim2 0 |] },
              Loop_nest.Load { Loop_nest.buf = "A"; idx = [| dim2 1 |] } );
        ];
      buffers = [ ("O", [| 4 |]); ("A", [| 3 |]) ];
    }
  in
  check "shadowed store warned" true
    (has_warning_prefix "shadowed store" (Nest_lint.run shadowed));
  (* A reduction accumulator is NOT shadowed (matmul's C ignores k). *)
  let matmul_nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  check "accumulator not flagged" false
    (has_warning_prefix "shadowed store" (Nest_lint.run matmul_nest));
  (* Out-of-bounds accesses are promoted to per-access Error diags, and
     the error/validate invariant still holds. *)
  let broken =
    buggy_interchange (Lower.to_loop_nest (Test_helpers.small_conv ()))
  in
  let diags = Nest_lint.run broken in
  check "OOB errors emitted" true
    (List.exists
       (fun (d : Nest_lint.diagnostic) ->
         d.Nest_lint.severity = Nest_lint.Error
         && String.length d.Nest_lint.message >= 20
         && String.sub d.Nest_lint.message 0 20 = "out-of-bounds access")
       diags);
  check "lint error iff validate rejects" true
    (Nest_lint.has_error diags && Loop_nest.validate broken <> Ok ())

let suite =
  [
    Alcotest.test_case "bounds: interval is exact" `Quick test_interval_exact;
    Alcotest.test_case "bounds: agrees with validate on random corpus" `Quick
      test_bounds_matches_validate;
    Alcotest.test_case "bounds: sound after legal schedules" `Quick
      test_bounds_after_schedules;
    Alcotest.test_case "footprint: matmul levels by hand" `Quick
      test_footprint_matmul;
    Alcotest.test_case "footprint: over-approximates exact distinct count"
      `Quick test_footprint_over_approximates;
    Alcotest.test_case "footprint: tracks cache-sim miss ordering" `Quick
      test_footprint_tracks_cache_sim;
    Alcotest.test_case "footprint: producer/consumer overlap verdicts" `Quick
      test_producer_consumer;
    Alcotest.test_case "verifier: mutation tests" `Quick
      test_verifier_mutations;
    Alcotest.test_case "verifier: wired into apply" `Quick
      test_verifier_in_apply;
    Alcotest.test_case "sanitizer: sound on Legality-approved transforms"
      `Quick test_sanitizer_sound_on_legal_transforms;
    Alcotest.test_case "sanitizer: full schedules incl. im2col" `Quick
      test_sanitizer_full_schedules;
    Alcotest.test_case "sanitizer: catches an in-bounds miscompile" `Quick
      test_sanitizer_catches_miscompile;
    Alcotest.test_case "sanitizer: stats and pair dedup" `Quick
      test_sanitizer_stats;
    Alcotest.test_case "observation: footprint feature block" `Quick
      test_footprint_observation;
    Alcotest.test_case "lint: unused/shadowed/oob rules" `Quick
      test_lint_rules;
  ]
