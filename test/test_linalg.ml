(* Tests for structured-op construction and reference execution. *)

let test_matmul_shape () =
  let op = Linalg.matmul ~m:4 ~n:6 ~k:8 () in
  Alcotest.(check (array int)) "domain" [| 4; 6; 8 |] op.Linalg.domain;
  Alcotest.(check int) "loops" 3 (Linalg.n_loops op);
  Alcotest.(check int) "iterations" 192 (Linalg.iteration_count op)

let test_matmul_reference () =
  (* 2x2 known product. *)
  let op = Linalg.matmul ~m:2 ~n:2 ~k:2 () in
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = [| 5.0; 6.0; 7.0; 8.0 |] in
  let c = Linalg.execute_reference op [ ("A", a); ("B", b) ] in
  Alcotest.(check (array (float 1e-9))) "product" [| 19.0; 22.0; 43.0; 50.0 |] c

let test_conv_domain_seven_loops () =
  let op = Test_helpers.small_conv () in
  Alcotest.(check int) "seven loops" 7 (Linalg.n_loops op);
  Alcotest.(check (array int)) "domain" [| 2; 6; 6; 4; 3; 3; 3 |] op.Linalg.domain

let test_conv_known_value () =
  (* 1x3x3x1 image, 3x3 kernel of ones, stride 1 -> single output = sum. *)
  let op =
    Linalg.conv2d
      {
        Linalg.batch = 1;
        in_h = 3;
        in_w = 3;
        channels = 1;
        kernel_h = 3;
        kernel_w = 3;
        filters = 1;
        stride = 1;
      }
  in
  let image = Array.init 9 (fun i -> float_of_int (i + 1)) in
  let filter = Array.make 9 1.0 in
  let out = Linalg.execute_reference op [ ("input", image); ("filter", filter) ] in
  Alcotest.(check (array (float 1e-9))) "sum of 1..9" [| 45.0 |] out

let test_conv_stride () =
  let op =
    Linalg.conv2d
      {
        Linalg.batch = 1;
        in_h = 5;
        in_w = 5;
        channels = 1;
        kernel_h = 3;
        kernel_w = 3;
        filters = 1;
        stride = 2;
      }
  in
  Alcotest.(check (array int)) "output 2x2" [| 1; 2; 2; 1; 3; 3; 1 |] op.Linalg.domain

let test_conv_rejects_big_kernel () =
  Alcotest.check_raises "kernel too big"
    (Invalid_argument "Linalg.conv2d: kernel larger than input") (fun () ->
      ignore
        (Linalg.conv2d
           {
             Linalg.batch = 1;
             in_h = 2;
             in_w = 2;
             channels = 1;
             kernel_h = 3;
             kernel_w = 3;
             filters = 1;
             stride = 1;
           }))

let test_maxpool_reference () =
  (* 1x4x4x1, 2x2 pool stride 2: max of each quadrant. *)
  let op =
    Linalg.maxpool
      {
        Linalg.p_batch = 1;
        p_in_h = 4;
        p_in_w = 4;
        p_channels = 1;
        p_kernel = 2;
        p_stride = 2;
      }
  in
  let image = Array.init 16 (fun i -> float_of_int i) in
  let out = Linalg.execute_reference op [ ("input", image) ] in
  Alcotest.(check (array (float 1e-9))) "quadrant maxes" [| 5.0; 7.0; 13.0; 15.0 |] out

let test_maxpool_negative_inputs () =
  (* Initialization must be -inf, not 0, so all-negative windows work. *)
  let op =
    Linalg.maxpool
      {
        Linalg.p_batch = 1;
        p_in_h = 2;
        p_in_w = 2;
        p_channels = 1;
        p_kernel = 2;
        p_stride = 2;
      }
  in
  let out = Linalg.execute_reference op [ ("input", [| -5.0; -3.0; -9.0; -4.0 |]) ] in
  Alcotest.(check (array (float 1e-9))) "max of negatives" [| -3.0 |] out

let test_add_relu_reference () =
  let add = Linalg.add [| 2; 2 |] in
  let out =
    Linalg.execute_reference add
      [ ("in0", [| 1.0; 2.0; 3.0; 4.0 |]); ("in1", [| 10.0; 20.0; 30.0; 40.0 |]) ]
  in
  Alcotest.(check (array (float 1e-9))) "sum" [| 11.0; 22.0; 33.0; 44.0 |] out;
  let relu = Linalg.relu [| 4 |] in
  let out = Linalg.execute_reference relu [ ("in0", [| -1.0; 0.0; 2.0; -3.0 |]) ] in
  Alcotest.(check (array (float 1e-9))) "clamped" [| 0.0; 0.0; 2.0; 0.0 |] out

let test_validate_catches_oob () =
  (* An operand whose map reads beyond its shape must be rejected. *)
  let bad () =
    Linalg.generic ~domain:[| 4 |] ~iter_kinds:[| Linalg.Parallel_iter |]
      ~inputs:
        [ { Linalg.name = "x"; shape = [| 2 |]; map = Affine.identity_map 1 } ]
      ~output:{ Linalg.name = "y"; shape = [| 4 |]; map = Affine.identity_map 1 }
      ~body:(Linalg.Input 0) ()
  in
  Alcotest.(check bool) "raises" true
    (match bad () with exception Invalid_argument _ -> true | _ -> false)

let test_validate_reduction_needs_init () =
  let bad () =
    Linalg.generic ~domain:[| 4 |] ~iter_kinds:[| Linalg.Reduction_iter |]
      ~inputs:
        [ { Linalg.name = "x"; shape = [| 4 |]; map = Affine.identity_map 1 } ]
      ~output:
        { Linalg.name = "y"; shape = [| 4 |]; map = Affine.identity_map 1 }
      ~body:(Linalg.Binop (Linalg.Add, Linalg.Output, Linalg.Input 0))
      ()
  in
  Alcotest.(check bool) "raises" true
    (match bad () with exception Invalid_argument _ -> true | _ -> false)

let test_math_op_counts () =
  let op = Linalg.matmul ~m:2 ~n:2 ~k:2 () in
  Alcotest.(check (array int)) "matmul: 1 add 1 mul" [| 1; 0; 1; 0; 0; 0 |]
    (Linalg.math_op_counts op);
  let relu = Linalg.relu [| 4 |] in
  Alcotest.(check (array int)) "relu: max not counted" [| 0; 0; 0; 0; 0; 0 |]
    (Linalg.math_op_counts relu)

let test_flops_per_point () =
  Alcotest.(check int) "matmul fma" 2
    (Linalg.flops_per_point (Linalg.matmul ~m:2 ~n:2 ~k:2 ()));
  Alcotest.(check int) "maxpool max" 1
    (Linalg.flops_per_point (Test_helpers.small_maxpool ()))

let test_kind_names () =
  Alcotest.(check string) "matmul" "matmul"
    (Linalg.kind_name (Linalg.matmul ~m:2 ~n:2 ~k:2 ()));
  Alcotest.(check string) "conv2d" "conv2d" (Linalg.kind_name (Test_helpers.small_conv ()));
  Alcotest.(check string) "maxpool" "maxpool"
    (Linalg.kind_name (Test_helpers.small_maxpool ()));
  Alcotest.(check string) "add" "add" (Linalg.kind_name (Linalg.add [| 2 |]));
  Alcotest.(check string) "relu" "relu" (Linalg.kind_name (Linalg.relu [| 2 |]))

let test_execute_rejects_missing_buffer () =
  let op = Linalg.matmul ~m:2 ~n:2 ~k:2 () in
  Alcotest.(check bool) "raises" true
    (match Linalg.execute_reference op [ ("A", Array.make 4 0.0) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qcheck_matmul_identity =
  (* A * I = A for square matrices. *)
  QCheck.Test.make ~name:"matmul by identity is identity" ~count:50
    QCheck.(int_range 1 8)
    (fun n ->
      let op = Linalg.matmul ~m:n ~n ~k:n () in
      let rng = Util.Rng.create (n + 1) in
      let a = Array.init (n * n) (fun _ -> Util.Rng.gaussian rng) in
      let id =
        Array.init (n * n) (fun i -> if i / n = i mod n then 1.0 else 0.0)
      in
      let c = Linalg.execute_reference op [ ("A", a); ("B", id) ] in
      Test_helpers.arrays_close a c)

let qcheck_add_commutes =
  QCheck.Test.make ~name:"elementwise add commutes" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (r, c) ->
      let op = Linalg.add [| r; c |] in
      let rng = Util.Rng.create (r + (10 * c)) in
      let x = Array.init (r * c) (fun _ -> Util.Rng.gaussian rng) in
      let y = Array.init (r * c) (fun _ -> Util.Rng.gaussian rng) in
      let xy = Linalg.execute_reference op [ ("in0", x); ("in1", y) ] in
      let yx = Linalg.execute_reference op [ ("in0", y); ("in1", x) ] in
      Test_helpers.arrays_close xy yx)

let suite =
  [
    Alcotest.test_case "matmul shape" `Quick test_matmul_shape;
    Alcotest.test_case "matmul reference" `Quick test_matmul_reference;
    Alcotest.test_case "conv seven loops" `Quick test_conv_domain_seven_loops;
    Alcotest.test_case "conv known value" `Quick test_conv_known_value;
    Alcotest.test_case "conv stride" `Quick test_conv_stride;
    Alcotest.test_case "conv rejects big kernel" `Quick test_conv_rejects_big_kernel;
    Alcotest.test_case "maxpool reference" `Quick test_maxpool_reference;
    Alcotest.test_case "maxpool negative inputs" `Quick test_maxpool_negative_inputs;
    Alcotest.test_case "add/relu reference" `Quick test_add_relu_reference;
    Alcotest.test_case "validate catches OOB" `Quick test_validate_catches_oob;
    Alcotest.test_case "reduction needs init" `Quick test_validate_reduction_needs_init;
    Alcotest.test_case "math op counts" `Quick test_math_op_counts;
    Alcotest.test_case "flops per point" `Quick test_flops_per_point;
    Alcotest.test_case "kind names" `Quick test_kind_names;
    Alcotest.test_case "missing buffer rejected" `Quick
      test_execute_rejects_missing_buffer;
    QCheck_alcotest.to_alcotest qcheck_matmul_identity;
    QCheck_alcotest.to_alcotest qcheck_add_commutes;
  ]
