(* Tests for Util.Rng and Util.Stats. *)

let test_rng_deterministic () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.int64 a) (Util.Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Util.Rng.create 42 in
  let c = Util.Rng.split a in
  Alcotest.(check bool) "split differs from parent"
    (Util.Rng.int64 a <> Util.Rng.int64 c)
    true

let test_rng_copy () =
  let a = Util.Rng.create 7 in
  ignore (Util.Rng.int64 a);
  let b = Util.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Util.Rng.int64 a)
    (Util.Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Util.Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_zero () =
  let rng = Util.Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Util.Rng.int rng 0))

let test_rng_uniform_range () =
  let rng = Util.Rng.create 5 in
  for _ = 1 to 10_000 do
    let u = Util.Rng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_rng_uniform_mean () =
  let rng = Util.Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Util.Rng.uniform rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_rng_gaussian_moments () =
  let rng = Util.Rng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let g = Util.Rng.gaussian rng in
    sum := !sum +. g;
    sq := !sq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Util.Rng.create 3 in
  let arr = Array.init 50 (fun i -> i) in
  Util.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let rng = Util.Rng.create 9 in
  let picked = Util.Rng.sample_without_replacement rng 5 (Array.init 10 (fun i -> i)) in
  Alcotest.(check int) "five picks" 5 (Array.length picked);
  let module S = Set.Make (Int) in
  Alcotest.(check int) "distinct" 5 (S.cardinal (S.of_list (Array.to_list picked)))

let test_rng_choice_empty () =
  let rng = Util.Rng.create 1 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choice: empty array")
    (fun () -> ignore (Util.Rng.choice rng [||]))

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Util.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ])

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 4.0 (Util.Stats.geomean [ 2.0; 8.0 ])

let test_stats_geomean_rejects_nonpositive () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Util.Stats.geomean [ 1.0; 0.0 ]))

let test_stats_median_odd () =
  Alcotest.(check (float 1e-9)) "odd" 3.0 (Util.Stats.median [ 5.0; 1.0; 3.0 ])

let test_stats_median_even () =
  Alcotest.(check (float 1e-9)) "even" 2.5 (Util.Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "stddev" 2.0
    (Util.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_min_max () =
  let lo, hi = Util.Stats.min_max [ 3.0; -1.0; 7.0 ] in
  Alcotest.(check (float 1e-9)) "min" (-1.0) lo;
  Alcotest.(check (float 1e-9)) "max" 7.0 hi

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Util.Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Util.Stats.percentile 100.0 xs)

let test_stats_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Util.Stats.mean []))

(* --- Atomic_file failure paths -------------------------------------- *)

(* Tests run as root, which ignores directory permission bits, so the
   unwritable-parent cases are provoked structurally: a parent that is a
   regular file, and a parent that does not exist. Both must fail with
   [Sys_error] and leave nothing behind. *)

let test_atomic_parent_is_file () =
  let file = Filename.temp_file "atomic_parent" ".f" in
  let path = Filename.concat file "out.json" in
  (match Util.Atomic_file.write_string ~path "x" with
  | () -> Alcotest.fail "expected Sys_error"
  | exception Sys_error _ -> ());
  Alcotest.(check bool) "target absent" false (Sys.file_exists path);
  Sys.remove file

let test_atomic_parent_missing () =
  let dir = Filename.temp_file "atomic_gone" "" in
  Sys.remove dir;
  let path = Filename.concat dir "out.json" in
  (match Util.Atomic_file.write_string ~path "x" with
  | () -> Alcotest.fail "expected Sys_error"
  | exception Sys_error _ -> ());
  Alcotest.(check bool) "dir still absent" false (Sys.file_exists dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_atomic_exception_cleans_tmp () =
  let dir = Filename.temp_file "atomic_dir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let path = Filename.concat dir "data.txt" in
  Util.Atomic_file.write_string ~path "old";
  (match
     Util.Atomic_file.with_out ~path (fun oc ->
         output_string oc "half-written";
         failwith "boom")
   with
  | () -> Alcotest.fail "expected the writer's exception"
  | exception Failure msg -> Alcotest.(check string) "propagates" "boom" msg);
  Alcotest.(check string) "previous content intact" "old" (read_file path);
  Alcotest.(check (list string))
    "no temp file left behind" [ "data.txt" ]
    (Array.to_list (Sys.readdir dir));
  Sys.remove path;
  Sys.rmdir dir

let qcheck_geomean_le_mean =
  QCheck.Test.make ~name:"geomean <= mean (AM-GM)" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.01 100.0))
    (fun xs -> Util.Stats.geomean xs <= Util.Stats.mean xs +. 1e-9)

let qcheck_rng_int_in_range =
  QCheck.Test.make ~name:"rng int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Util.Rng.create seed in
      let v = Util.Rng.int rng bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int rejects zero" `Quick test_rng_int_rejects_zero;
    Alcotest.test_case "rng uniform range" `Quick test_rng_uniform_range;
    Alcotest.test_case "rng uniform mean" `Quick test_rng_uniform_mean;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng shuffle permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng sample w/o replacement" `Quick
      test_rng_sample_without_replacement;
    Alcotest.test_case "rng choice empty" `Quick test_rng_choice_empty;
    Alcotest.test_case "stats mean" `Quick test_stats_mean;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats geomean non-positive" `Quick
      test_stats_geomean_rejects_nonpositive;
    Alcotest.test_case "stats median odd" `Quick test_stats_median_odd;
    Alcotest.test_case "stats median even" `Quick test_stats_median_even;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats min max" `Quick test_stats_min_max;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "atomic file: parent is a file" `Quick
      test_atomic_parent_is_file;
    Alcotest.test_case "atomic file: parent missing" `Quick
      test_atomic_parent_missing;
    Alcotest.test_case "atomic file: exception cleans tmp" `Quick
      test_atomic_exception_cleans_tmp;
    QCheck_alcotest.to_alcotest qcheck_geomean_le_mean;
    QCheck_alcotest.to_alcotest qcheck_rng_int_in_range;
  ]
