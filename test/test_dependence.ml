(* Differential soundness suite for the static dependence analysis.

   Contract under test (see lib/analysis/legality.mli): a [true] verdict
   means the transformation provably preserves semantics. So on every
   randomized nest, every legal verdict is cross-checked against the
   reference interpreter: a legal loop reversal / interchange / tiling
   must leave every buffer byte-identical (a truly independent
   reordering preserves each memory location's read/write sequence, so
   even float results are exactly equal). Any mismatch is unsoundness
   and fails the suite. Conservative false negatives are allowed and not
   checked here beyond non-vacuity counters. *)

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Random nest generator                                              *)
(* ------------------------------------------------------------------ *)

(* Range of an affine expr over the rectangular domain. *)
let expr_range (ubs : int array) (e : Affine.expr) =
  let lo = ref e.Affine.const and hi = ref e.Affine.const in
  Array.iteri
    (fun k c ->
      let v = c * (ubs.(k) - 1) in
      lo := !lo + min 0 v;
      hi := !hi + max 0 v)
    e.Affine.coeffs;
  (!lo, !hi)

(* Shift the expr so its minimum over the domain is >= 0. *)
let normalize ubs (e : Affine.expr) =
  let lo, _ = expr_range ubs e in
  if lo < 0 then { e with Affine.const = e.Affine.const - lo } else e

(* One random subscript over [n] loop variables: identity, shifted,
   negated (reversed access), scaled, or coupled (i + j). *)
let gen_subscript rng n ubs =
  let dim k = Affine.dim n k in
  let k = Util.Rng.int rng n in
  let e =
    match Util.Rng.int rng 6 with
    | 0 -> dim k
    | 1 -> Affine.expr ~const:(1 - Util.Rng.int rng 3) n [ (k, 1) ]
    | 2 -> Affine.expr ~const:0 n [ (k, -1) ] (* reversed *)
    | 3 -> Affine.expr ~const:(Util.Rng.int rng 2) n [ (k, 2) ]
    | 4 when n >= 2 ->
        let j = (k + 1) mod n in
        Affine.expr ~const:0 n [ (k, 1); (j, 1) ]
    | _ -> Affine.expr ~const:0 n [ (k, 1) ]
  in
  normalize ubs e

let gen_nest rng =
  let n = 1 + Util.Rng.int rng 3 in
  let ubs = Array.init n (fun _ -> 2 + Util.Rng.int rng 4) in
  let rank = 1 + Util.Rng.int rng (min n 2) in
  (* Store target and an optional load of the same buffer per statement,
     plus a load from the input buffer. *)
  let n_stmts = 1 + Util.Rng.int rng 2 in
  let stmts =
    List.init n_stmts (fun _ ->
        let st = Array.init rank (fun _ -> gen_subscript rng n ubs) in
        let self_load =
          match Util.Rng.int rng 3 with
          | 0 -> None (* no self dependence from this statement *)
          | 1 -> Some (Array.copy st) (* accumulator pattern *)
          | _ -> Some (Array.init rank (fun _ -> gen_subscript rng n ubs))
        in
        let in_load = Array.init rank (fun _ -> gen_subscript rng n ubs) in
        (st, self_load, in_load))
  in
  (* Buffer shapes must bound every subscript used on each dim. *)
  let shape_of refs =
    Array.init rank (fun d ->
        List.fold_left
          (fun acc (idx : Affine.expr array) ->
            let _, hi = expr_range ubs idx.(d) in
            max acc (hi + 1))
          1 refs)
  in
  let out_refs =
    List.concat_map
      (fun (st, self, _) -> st :: Option.to_list self)
      stmts
  in
  let in_refs = List.map (fun (_, _, l) -> l) stmts in
  let body =
    List.map
      (fun (st, self, in_load) ->
        let rhs =
          let input = Loop_nest.Load { Loop_nest.buf = "A"; idx = in_load } in
          match self with
          | None -> Loop_nest.Binop (Linalg.Add, input, Loop_nest.Const 1.0)
          | Some idx ->
              Loop_nest.Binop
                (Linalg.Add, Loop_nest.Load { Loop_nest.buf = "O"; idx }, input)
        in
        Loop_nest.Store ({ Loop_nest.buf = "O"; idx = st }, rhs))
      stmts
  in
  {
    Loop_nest.name = "rand";
    loops =
      Array.init n (fun k ->
          { Loop_nest.ub = ubs.(k); kind = Loop_nest.Seq; origin = k });
    body;
    buffers = [ ("O", shape_of out_refs); ("A", shape_of in_refs) ];
    inits = [ ("O", 0.5) ];
  }

let input_data rng (nest : Loop_nest.t) =
  let shape = Loop_nest.buffer_shape nest "A" in
  let len = Array.fold_left ( * ) 1 shape in
  [ ("A", Array.init len (fun i -> Util.Rng.float rng 4.0 +. float_of_int i)) ]

(* ------------------------------------------------------------------ *)
(* Differential machinery                                             *)
(* ------------------------------------------------------------------ *)

let reverse_loop k (nest : Loop_nest.t) =
  let n = Array.length nest.Loop_nest.loops in
  let subst =
    Array.init n (fun j ->
        if j = k then
          Affine.expr
            ~const:(nest.Loop_nest.loops.(k).Loop_nest.ub - 1)
            n
            [ (k, -1) ]
        else Affine.dim n j)
  in
  Loop_nest.map_body_exprs (fun e -> Affine.substitute e subst) nest

let run_all nest ~inputs =
  List.sort compare (Interp.run nest ~inputs)

(* Exact comparison for transformations that preserve each memory
   location's read/write sequence. [~tol:true] allows relative float
   error: legal reorderings of an accumulator statement's updates
   reassociate the reduction, which changes rounding but nothing else. *)
let same_result ?(tol = false) r1 r2 =
  let close a b =
    a = b || (tol && Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a))
  in
  List.length r1 = List.length r2
  && List.for_all2
       (fun (n1, a1) (n2, a2) ->
         n1 = n2
         && Array.length a1 = Array.length a2
         && Array.for_all2 close a1 a2)
       r1 r2

(* Does any statement load exactly what it stores (C += ... pattern)?
   Reordering such a reduction changes float rounding, so the innermost
   reversal check skips these nests. *)
let has_accumulator (nest : Loop_nest.t) =
  List.exists
    (fun (Loop_nest.Store (st, e)) ->
      let rec loads acc = function
        | Loop_nest.Load r -> r :: acc
        | Loop_nest.Const _ -> acc
        | Loop_nest.Binop (_, a, b) -> loads (loads acc a) b
        | Loop_nest.Unop (_, x) -> loads acc x
      in
      List.exists
        (fun (r : Loop_nest.mem_ref) ->
          r.Loop_nest.buf = st.Loop_nest.buf
          && Array.length r.Loop_nest.idx = Array.length st.Loop_nest.idx
          && Array.for_all2 Affine.equal_expr r.Loop_nest.idx st.Loop_nest.idx)
        (loads [] e))
    nest.Loop_nest.body

(* Smallest usable tile size: the least prime factor, or the trip count
   itself when prime (tiling by the full trip count is still legal). *)
let smallest_divisor x =
  if x mod 2 = 0 then 2 else if x mod 3 = 0 then 3 else x

(* Counters proving the corpus is not vacuous: both legal and illegal
   verdicts of every kind must actually occur. *)
type tally = {
  mutable par_legal : int;
  mutable par_illegal : int;
  mutable swap_legal : int;
  mutable swap_illegal : int;
  mutable tile_legal : int;
  mutable tile_illegal : int;
  mutable vec_checked : int;
}

let tally = { par_legal = 0; par_illegal = 0; swap_legal = 0;
              swap_illegal = 0; tile_legal = 0; tile_illegal = 0;
              vec_checked = 0 }

let check_nest rng nest =
  match Loop_nest.validate nest with
  | Error e -> Alcotest.failf "generator produced an invalid nest: %s" e
  | Ok () ->
      let n = Loop_nest.n_loops nest in
      let leg = Legality.analyze nest in
      let inputs = input_data rng nest in
      let reference = run_all nest ~inputs in
      let expect_equal ?tol what nest' =
        if not (same_result ?tol reference (run_all nest' ~inputs)) then
          Alcotest.failf "UNSOUND %s on:@.%s" what (Ir_printer.to_string nest)
      in
      (* interchange/tile verdicts exempt accumulator self-deps, so on
         accumulator nests a legal reordering may reassociate the
         reduction: compare those with a tolerance, everything else
         exactly *)
      let reassoc = has_accumulator nest in
      (* parallel verdict: reversal of the loop must be exact *)
      for k = 0 to n - 1 do
        if Legality.can_parallelize leg k then begin
          tally.par_legal <- tally.par_legal + 1;
          expect_equal (Printf.sprintf "parallelize loop %d" k)
            (reverse_loop k nest);
          (* and through the env's actual Parallelize path: tile the loop
             to a forall and reverse the hoisted chunk loop *)
          let sizes = Array.make n 0 in
          sizes.(k) <- smallest_divisor nest.Loop_nest.loops.(k).Loop_nest.ub;
          if sizes.(k) < nest.Loop_nest.loops.(k).Loop_nest.ub then
            match Loop_transforms.tile ~parallel:true sizes nest with
            | Error e -> Alcotest.failf "tile ~parallel rejected: %s" e
            | Ok tiled ->
                expect_equal
                  (Printf.sprintf "parallelize (forall) loop %d" k)
                  (reverse_loop 0 tiled)
        end
        else tally.par_illegal <- tally.par_illegal + 1
      done;
      (* interchange verdict *)
      for k = 0 to n - 2 do
        if Legality.can_interchange leg k then begin
          tally.swap_legal <- tally.swap_legal + 1;
          match Loop_transforms.swap_adjacent k nest with
          | Error e -> Alcotest.failf "swap_adjacent rejected: %s" e
          | Ok swapped ->
              expect_equal ~tol:reassoc
                (Printf.sprintf "interchange %d<->%d" k (k + 1))
                swapped
        end
        else tally.swap_illegal <- tally.swap_illegal + 1
      done;
      (* tile verdict: full-band rectangular tiling must be exact *)
      if Legality.can_tile leg ~band_start:0 then begin
        tally.tile_legal <- tally.tile_legal + 1;
        let sizes =
          Array.map
            (fun (l : Loop_nest.loop) -> smallest_divisor l.Loop_nest.ub)
            nest.Loop_nest.loops
        in
        match Loop_transforms.tile sizes nest with
        | Error e -> Alcotest.failf "tile rejected: %s" e
        | Ok tiled -> expect_equal ~tol:reassoc "tile" tiled
      end
      else tally.tile_illegal <- tally.tile_illegal + 1;
      (* vectorize verdict: with no accumulator statement the innermost
         loop's iterations must be order-independent *)
      if n > 0 && Legality.can_vectorize leg && not (has_accumulator nest)
      then begin
        tally.vec_checked <- tally.vec_checked + 1;
        expect_equal "vectorize (innermost reversal)" (reverse_loop (n - 1) nest)
      end

let test_randomized () =
  let rng = Util.Rng.create 2024 in
  for _ = 1 to 300 do
    check_nest rng (gen_nest rng)
  done;
  (* the corpus must exercise both sides of every verdict *)
  check "some parallel-legal" true (tally.par_legal > 50);
  check "some parallel-illegal" true (tally.par_illegal > 50);
  check "some swap-legal" true (tally.swap_legal > 20);
  check "some swap-illegal" true (tally.swap_illegal > 5);
  check "some tile-legal" true (tally.tile_legal > 50);
  check "some tile-illegal" true (tally.tile_illegal > 10);
  check "some vectorize checks" true (tally.vec_checked > 20)

(* ------------------------------------------------------------------ *)
(* Precision: known verdicts on canonical nests                       *)
(* ------------------------------------------------------------------ *)

let parse = Ir_parser.parse

let recurrence =
  "func @rec { buffer b : [16] init 1.0 \
   for %0 = 0 to 15 origin 0 { store b[%0 + 1] = add(load b[%0], 1.0) } }"

let skewed =
  "func @skew { buffer C : [9, 9] init 0.0 \
   for %0 = 0 to 8 origin 0 { for %1 = 0 to 8 origin 1 { \
   store C[%0 + 1, %1] = add(load C[%0, %1 + 1], 1.0) } } }"

let columnwise =
  "func @col { buffer C : [9, 8] init 0.0 \
   for %0 = 0 to 8 origin 0 { for %1 = 0 to 8 origin 1 { \
   store C[%0 + 1, %1] = add(load C[%0, %1], 1.0) } } }"

let test_recurrence () =
  let leg = Legality.analyze (parse recurrence) in
  check "recurrence: loop carries dep" true (Legality.carries_dependence leg 0);
  check "recurrence: not parallel" false (Legality.can_parallelize leg 0);
  check "recurrence: not vectorizable" false (Legality.can_vectorize leg);
  check "recurrence: tile 1-loop band ok" true (Legality.can_tile leg ~band_start:0);
  check "recurrence: unroll ok" true (Legality.can_unroll leg)

let test_skewed () =
  let leg = Legality.analyze (parse skewed) in
  check "skewed: interchange blocked" false (Legality.can_interchange leg 0);
  check "skewed: tile blocked" false (Legality.can_tile leg ~band_start:0);
  check "skewed: outer not parallel" false (Legality.can_parallelize leg 0);
  check "skewed: inner not parallel" false (Legality.can_parallelize leg 1);
  check "skewed: vectorize ok (inner iterations independent)" true
    (Legality.can_vectorize leg)

let test_columnwise () =
  let leg = Legality.analyze (parse columnwise) in
  check "columnwise: interchange ok" true (Legality.can_interchange leg 0);
  check "columnwise: outer not parallel" false (Legality.can_parallelize leg 0);
  check "columnwise: inner parallel" true (Legality.can_parallelize leg 1);
  check "columnwise: vectorize ok" true (Legality.can_vectorize leg)

let test_matmul () =
  let op =
    match Op_spec.parse "matmul:8x8x8" with
    | Ok op -> op
    | Error e -> Alcotest.fail e
  in
  let nest = Lower.to_loop_nest op in
  let leg = Legality.analyze nest in
  check "matmul: i parallel" true (Legality.can_parallelize leg 0);
  check "matmul: j parallel" true (Legality.can_parallelize leg 1);
  check "matmul: k not parallel" false (Legality.can_parallelize leg 2);
  check "matmul: k carries the reduction" true (Legality.carries_dependence leg 2);
  check "matmul: band permutable" true (Legality.can_tile leg ~band_start:0);
  check "matmul: vectorize ok (reduction lowers to vector reduce)" true
    (Legality.can_vectorize leg);
  check "matmul: interchange i<->j" true (Legality.can_interchange leg 0);
  check "matmul: interchange j<->k" true (Legality.can_interchange leg 1);
  (* the full analysis names the accumulator dependences *)
  let deps = Dependence.analyze nest in
  check "matmul: has a flow dep" true
    (List.exists (fun d -> d.Dependence.kind = Dependence.Flow) deps);
  check "matmul: has an output dep" true
    (List.exists (fun d -> d.Dependence.kind = Dependence.Output) deps);
  check "matmul: reduction carried by k" true
    (List.exists (fun d -> d.Dependence.carrier = Some 2) deps);
  check "matmul: nothing carried by i" false
    (List.exists (fun d -> d.Dependence.carrier = Some 0) deps)

let test_conv () =
  let op =
    match Op_spec.parse "conv2d:8x8x4,k3,f8,s1" with
    | Ok op -> op
    | Error e -> Alcotest.fail e
  in
  let leg = Legality.analyze (Lower.to_loop_nest op) in
  let n = Legality.n_loops leg in
  (* reduction (kernel) dims: reassociation makes sequential reorderings
     legal, but concurrent updates still race *)
  check "conv: band permutable (reduction reassociates)" true
    (Legality.can_tile leg ~band_start:0);
  check "conv: kernel dims interchange" true
    (Legality.can_interchange leg (n - 2));
  check "conv: spatial dim parallel" true (Legality.can_parallelize leg 1);
  check "conv: kernel dim not parallel" false
    (Legality.can_parallelize leg (n - 1));
  check "conv: vectorize ok" true (Legality.can_vectorize leg)

(* Masks must shrink, never grow, when static legality is enabled — and
   they must actually shrink on a nest the syntactic masks get wrong. *)
let test_mask_intersection () =
  let op =
    match Op_spec.parse "matmul:16x16x16" with
    | Ok op -> op
    | Error e -> Alcotest.fail e
  in
  let st = Sched_state.init op in
  let with_leg = Env_config.default in
  let without = Env_config.with_static_legality false Env_config.default in
  let m1 = Action_space.masks with_leg st in
  let m0 = Action_space.masks without st in
  let subset a b = Array.for_all2 (fun x y -> (not x) || y) a b in
  check "t_mask shrinks" true
    (subset m1.Action_space.t_mask m0.Action_space.t_mask);
  check "swap_mask shrinks" true
    (subset m1.Action_space.swap_mask m0.Action_space.swap_mask);
  (* on the dataset ops nothing is lost *)
  check "matmul t_mask unchanged" true
    (m1.Action_space.t_mask = m0.Action_space.t_mask)

let test_certificates () =
  let op =
    match Op_spec.parse "matmul:8x8x8" with
    | Ok op -> op
    | Error e -> Alcotest.fail e
  in
  let prev = Sched_state.certify_enabled () in
  Sched_state.set_certify true;
  Fun.protect
    ~finally:(fun () -> Sched_state.set_certify prev)
    (fun () ->
      (* a fully legal schedule certifies end to end *)
      (match
         Sched_state.apply_all op
           [
             Schedule.Parallelize [| 4; 4; 0 |];
             Schedule.Tile [| 2; 2; 4 |];
             Schedule.Swap 1;
             Schedule.Vectorize;
           ]
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "legal schedule rejected: %s" e);
      (* forcing an unprovable transformation trips the certificate: a
         synthetic state whose nest is a recurrence but whose op metadata
         calls the dim parallel slips past the paper's syntactic mask,
         and only the certificate catches it *)
      let rec_nest = parse recurrence in
      let st =
        {
          Sched_state.original = op;
          op;
          nest = rec_nest;
          nest_digest = Loop_nest.digest rec_nest;
          applied = [];
          packing_elements = 0;
          parallelized = false;
          vectorized = false;
        }
      in
      check "certificate rejects parallelizing a recurrence" true
        (try
           (match Sched_state.apply st (Schedule.Parallelize [| 3 |]) with
           | Ok _ -> false (* certificate failed to fire: unsound *)
           | Error _ -> false (* masked before the certificate: not the
                                 path under test *))
         with Failure m -> Astring_contains.contains m "legality certificate"))

let suite =
  [
    Alcotest.test_case "300 randomized nests, zero unsound verdicts" `Slow
      test_randomized;
    Alcotest.test_case "recurrence verdicts" `Quick test_recurrence;
    Alcotest.test_case "skewed-dependence verdicts" `Quick test_skewed;
    Alcotest.test_case "columnwise verdicts" `Quick test_columnwise;
    Alcotest.test_case "matmul verdicts + dependences" `Quick test_matmul;
    Alcotest.test_case "conv verdicts (reduction reassociation)" `Quick
      test_conv;
    Alcotest.test_case "static masks only shrink" `Quick test_mask_intersection;
    Alcotest.test_case "certificates accept legal schedules" `Quick
      test_certificates;
  ]
