(* The unrolling extension (paper §6.1 future work). *)

let test_unroll_structure () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  match Loop_transforms.unroll 4 nest with
  | Error e -> Alcotest.fail e
  | Ok u ->
      Alcotest.(check (array int)) "inner trip divided" [| 8; 12; 4 |]
        (Loop_nest.trip_counts u);
      Alcotest.(check int) "body replicated" 4 (List.length u.Loop_nest.body)

let test_unroll_preserves_semantics () =
  Test_helpers.check_schedule_preserves (Test_helpers.small_matmul ())
    [ Schedule.Unroll 4 ]

let test_unroll_after_tile_preserves () =
  Test_helpers.check_schedule_preserves (Test_helpers.small_matmul ())
    [ Schedule.Tile [| 4; 4; 8 |]; Schedule.Unroll 2; Schedule.Vectorize ]

let test_unroll_conv_preserves () =
  Test_helpers.check_schedule_preserves (Test_helpers.small_conv ())
    [ Schedule.Swap 5; Schedule.Unroll 3 ]

let test_unroll_rejects_non_divisor () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  Alcotest.(check bool) "error" true
    (Result.is_error (Loop_transforms.unroll 5 nest))

let test_unroll_rejects_after_vectorize () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  let v = Result.get_ok (Loop_transforms.vectorize nest) in
  Alcotest.(check bool) "error" true (Result.is_error (Loop_transforms.unroll 2 v))

let test_unroll_rejects_factor_one () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  Alcotest.(check bool) "error" true (Result.is_error (Loop_transforms.unroll 1 nest))

let test_unroll_notation_roundtrip () =
  let s = [ Schedule.Tile [| 2; 2; 2 |]; Schedule.Unroll 4; Schedule.Vectorize ] in
  Alcotest.(check string) "printed" "T(2,2,2) U(4) V" (Schedule.to_string s);
  Alcotest.(check bool) "parsed back" true
    (Schedule.equal s (Result.get_ok (Schedule.of_string "T(2,2,2) U(4) V")))

let test_unroll_breaks_scalar_chain () =
  (* Unrolling a scalar reduction promotes the accumulator, so estimated
     time must drop. *)
  let op = Linalg.matmul ~m:256 ~n:256 ~k:256 () in
  let time sched =
    let st = Result.get_ok (Sched_state.apply_all op sched) in
    Cost_model.seconds ~machine:Machine.e5_2680_v4
      ~iter_kinds:st.Sched_state.op.Linalg.iter_kinds st.Sched_state.nest
  in
  Alcotest.(check bool) "unrolled faster" true
    (time [ Schedule.Unroll 8 ] < time [])

let test_unroll_printer_roundtrip () =
  let op = Test_helpers.small_matmul () in
  let st =
    Result.get_ok (Sched_state.apply_all op [ Schedule.Unroll 2 ])
  in
  let text = Ir_printer.to_string st.Sched_state.nest in
  Alcotest.(check string) "IR roundtrips" text
    (Ir_printer.to_string (Ir_parser.parse text))

let qcheck_unroll_factors_preserve =
  QCheck.Test.make ~name:"every divisor unroll factor preserves semantics" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let op = Test_helpers.small_matmul () in
      (* innermost trip is 16 *)
      let f = Util.Rng.choice rng [| 2; 4; 8; 16 |] in
      Test_helpers.check_schedule_preserves op [ Schedule.Unroll f ];
      true)

let suite =
  [
    Alcotest.test_case "unroll structure" `Quick test_unroll_structure;
    Alcotest.test_case "unroll preserves" `Quick test_unroll_preserves_semantics;
    Alcotest.test_case "unroll after tile" `Quick test_unroll_after_tile_preserves;
    Alcotest.test_case "unroll conv" `Quick test_unroll_conv_preserves;
    Alcotest.test_case "rejects non-divisor" `Quick test_unroll_rejects_non_divisor;
    Alcotest.test_case "rejects after vectorize" `Quick
      test_unroll_rejects_after_vectorize;
    Alcotest.test_case "rejects factor 1" `Quick test_unroll_rejects_factor_one;
    Alcotest.test_case "notation roundtrip" `Quick test_unroll_notation_roundtrip;
    Alcotest.test_case "breaks scalar chain" `Quick test_unroll_breaks_scalar_chain;
    Alcotest.test_case "printer roundtrip" `Quick test_unroll_printer_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_unroll_factors_preserve;
  ]
