(* Schedule notation: printing, parsing, round-trips. *)

let sched_testable =
  Alcotest.testable Schedule.pp Schedule.equal

let test_to_string () =
  let s =
    [
      Schedule.Tile [| 0; 32; 64 |];
      Schedule.Parallelize [| 4; 0; 0 |];
      Schedule.Swap 1;
      Schedule.Im2col;
      Schedule.Vectorize;
    ]
  in
  Alcotest.(check string) "notation" "T(0,32,64) P(4,0,0) S(1) C V"
    (Schedule.to_string s)

let test_of_string () =
  match Schedule.of_string "T(0,32,64) P(4,0,0) S(1) C V" with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check sched_testable) "parsed"
        [
          Schedule.Tile [| 0; 32; 64 |];
          Schedule.Parallelize [| 4; 0; 0 |];
          Schedule.Swap 1;
          Schedule.Im2col;
          Schedule.Vectorize;
        ]
        s

let test_of_string_interchange () =
  match Schedule.of_string "I(2,0,1)" with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check sched_testable) "parsed" [ Schedule.Interchange [| 2; 0; 1 |] ] s

let test_of_string_empty () =
  Alcotest.(check sched_testable) "empty" [] (Result.get_ok (Schedule.of_string "  "))

let test_of_string_rejects_unknown () =
  Alcotest.(check bool) "error" true (Result.is_error (Schedule.of_string "X(1)"))

let test_of_string_rejects_bad_ints () =
  Alcotest.(check bool) "error" true (Result.is_error (Schedule.of_string "T(1,a)"))

let test_of_string_rejects_multi_swap () =
  Alcotest.(check bool) "error" true (Result.is_error (Schedule.of_string "S(1,2)"))

let test_transformation_names () =
  Alcotest.(check string) "tiling" "tiling"
    (Schedule.transformation_name (Schedule.Tile [| 1 |]));
  Alcotest.(check string) "parallelization" "parallelization"
    (Schedule.transformation_name (Schedule.Parallelize [| 1 |]));
  Alcotest.(check string) "interchange" "interchange"
    (Schedule.transformation_name (Schedule.Swap 0));
  Alcotest.(check string) "im2col" "im2col" (Schedule.transformation_name Schedule.Im2col);
  Alcotest.(check string) "vectorization" "vectorization"
    (Schedule.transformation_name Schedule.Vectorize)

let qcheck_roundtrip =
  let gen_tr =
    QCheck.Gen.(
      oneof
        [
          map (fun l -> Schedule.Tile (Array.of_list l))
            (list_size (int_range 1 7) (int_range 0 128));
          map (fun l -> Schedule.Parallelize (Array.of_list l))
            (list_size (int_range 1 7) (int_range 0 128));
          map (fun l -> Schedule.Interchange (Array.of_list l))
            (list_size (int_range 1 7) (int_range 0 6));
          map (fun i -> Schedule.Swap i) (int_range 0 6);
          return Schedule.Im2col;
          return Schedule.Vectorize;
        ])
  in
  QCheck.Test.make ~name:"schedule notation roundtrips" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 7) gen_tr))
    (fun sched ->
      match Schedule.of_string (Schedule.to_string sched) with
      | Ok parsed -> Schedule.equal sched parsed
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "of_string interchange" `Quick test_of_string_interchange;
    Alcotest.test_case "of_string empty" `Quick test_of_string_empty;
    Alcotest.test_case "rejects unknown" `Quick test_of_string_rejects_unknown;
    Alcotest.test_case "rejects bad ints" `Quick test_of_string_rejects_bad_ints;
    Alcotest.test_case "rejects multi swap" `Quick test_of_string_rejects_multi_swap;
    Alcotest.test_case "transformation names" `Quick test_transformation_names;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
