(* Observation extraction, action space masks, and environment dynamics. *)

let cfg = Env_config.default

(* --- Env_config --- *)

let test_obs_dim_formula () =
  (* Table 1 with N=7, L=3, D=4, tau=7: 7 + 3*4*8 + 4*8 + 6 + 147 *)
  Alcotest.(check int) "obs dim" (7 + 96 + 32 + 6 + 147) (Env_config.obs_dim cfg)

let test_config_validates () =
  Alcotest.(check bool) "default ok" true (Env_config.validate cfg = Ok ());
  Alcotest.(check bool) "need 2+ tile slots" true
    (Result.is_error (Env_config.validate { cfg with Env_config.n_tile_slots = 1 }))

let test_cardinality_formula () =
  (* |A| = 2*M^N + N! + 2 for the flat space the paper derives. *)
  let c = Action_space.cardinality cfg ~n_loops:3 in
  let m = float_of_int (Env_config.n_tile_choices cfg) in
  Alcotest.(check (float 1e-6)) "3 loops" ((2.0 *. (m ** 3.0)) +. 6.0 +. 2.0) c

(* --- Observation --- *)

let test_observation_length () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  Alcotest.(check int) "length" (Env_config.obs_dim cfg)
    (Array.length (Observation.extract cfg st))

let test_observation_loop_info () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let info = Observation.loop_info cfg st in
  Alcotest.(check int) "padded to N" 7 (Array.length info);
  Alcotest.(check (float 1e-9)) "log2(8)/16" (3.0 /. 16.0) info.(0);
  Alcotest.(check (float 1e-9)) "padding zero" 0.0 info.(6)

let test_observation_access_matrix () =
  let op = Test_helpers.small_matmul () in
  let st = Sched_state.init op in
  (* A[d0, d2] of the 8x12x16 matmul: row 0 selects d0, row 1 selects d2 *)
  let m = Observation.access_matrix cfg st op.Linalg.inputs.(0) in
  Alcotest.(check int) "D*(N+1)" 32 (Array.length m);
  Alcotest.(check (float 1e-9)) "row0 col0 = 1/4" 0.25 m.(0);
  Alcotest.(check (float 1e-9)) "row1 col2 = 1/4" 0.25 m.(8 + 2)

let test_observation_reflects_interchange () =
  let op = Test_helpers.small_matmul () in
  let st0 = Sched_state.init op in
  let st1 = Result.get_ok (Sched_state.apply st0 (Schedule.Swap 0)) in
  let m0 = Observation.access_matrix cfg st0 op.Linalg.inputs.(0) in
  let m1 = Observation.access_matrix cfg st1 op.Linalg.inputs.(0) in
  (* After swapping loops 0 and 1, A's d0 coefficient moves to column 1. *)
  Alcotest.(check (float 1e-9)) "moved" 0.25 m1.(1);
  Alcotest.(check bool) "columns differ" true (m0 <> m1)

let test_observation_history_tracks () =
  let op = Test_helpers.small_matmul () in
  let st =
    Result.get_ok
      (Sched_state.apply_all op [ Schedule.Tile [| 4; 0; 0 |]; Schedule.Swap 1 ])
  in
  let h = Observation.history cfg st in
  let tau = cfg.Env_config.tau in
  (* loop 0, row 0 (tiling), step 0: log2(4)/8 = 0.25 *)
  Alcotest.(check (float 1e-9)) "tile size recorded" 0.25 h.(0);
  (* loop 1, row 2 (interchange), step 1: (1+1)/7 *)
  let idx = (((1 * 3) + 2) * tau) + 1 in
  Alcotest.(check (float 1e-9)) "swap recorded" (2.0 /. 7.0) h.(idx)

let test_observation_math_counts_in_vector () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let obs = Observation.extract cfg st in
  (* counts live after loop info + L load matrices + store matrix *)
  let off = 7 + (3 * 32) + 32 in
  Alcotest.(check (float 1e-9)) "adds" 0.25 obs.(off);
  Alcotest.(check (float 1e-9)) "muls" 0.25 obs.(off + 2)

let test_observation_rejects_oversized () =
  let op =
    Linalg.generic ~domain:(Array.make 8 2)
      ~iter_kinds:(Array.make 8 Linalg.Parallel_iter)
      ~inputs:
        [ { Linalg.name = "x"; shape = Array.make 8 2; map = Affine.identity_map 8 } ]
      ~output:{ Linalg.name = "y"; shape = Array.make 8 2; map = Affine.identity_map 8 }
      ~body:(Linalg.Input 0) ()
  in
  Alcotest.(check bool) "raises" true
    (match Observation.extract cfg (Sched_state.init op) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Action space --- *)

let test_masks_initial_matmul () =
  (* 64^3 so the menu's sizes divide every loop. *)
  let st = Sched_state.init (Linalg.matmul ~m:64 ~n:64 ~k:64 ()) in
  let m = Action_space.masks cfg st in
  Alcotest.(check (array bool)) "transformations"
    [| true; true; true; false; true |] m.Action_space.t_mask;
  (* loop 2 is the reduction: par mask admits only "no tiling" there *)
  Alcotest.(check bool) "par loop0 tiles allowed" true
    (Array.exists (fun b -> b) (Array.sub m.Action_space.par_mask.(0) 1 4));
  Alcotest.(check (array bool)) "par reduction blocked"
    (Array.init 5 (fun j -> j = 0))
    m.Action_space.par_mask.(2)

let test_masks_divisors () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let m = Action_space.masks cfg st in
  (* trips (8,12,16): slots select proper divisors > 1, descending.
     Loop 0 (trip 8) has divisors {4, 2}; loop 2 (trip 16) has {8,4,2}. *)
  Alcotest.(check (array bool)) "loop 0" [| true; true; true; false; false |]
    m.Action_space.tile_mask.(0);
  Alcotest.(check (array bool)) "loop 2" [| true; true; true; true; false |]
    m.Action_space.tile_mask.(2);
  let sizes = Action_space.slot_sizes cfg st in
  Alcotest.(check (array int)) "loop 0 sizes" [| 0; 4; 2; 0; 0 |] sizes.(0);
  Alcotest.(check (array int)) "loop 1 sizes" [| 0; 6; 4; 3; 2 |] sizes.(1);
  Alcotest.(check (array int)) "loop 2 sizes" [| 0; 8; 4; 2; 0 |] sizes.(2)

let test_masks_padded_loops () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let m = Action_space.masks cfg st in
  Alcotest.(check (array bool)) "padding only no-tile"
    (Array.init 5 (fun j -> j = 0))
    m.Action_space.tile_mask.(5);
  Alcotest.(check bool) "swap 2 out of range" false m.Action_space.swap_mask.(2)

let test_masks_conv_im2col () =
  let st = Sched_state.init (Test_helpers.small_conv ()) in
  let m = Action_space.masks cfg st in
  Alcotest.(check bool) "im2col available" true m.Action_space.t_mask.(3)

let test_to_transformation_noop () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let action =
    { Action_space.transform = Action_space.t_tile;
      tile_choices = Array.make 7 0; swap_choice = 0 }
  in
  Alcotest.(check bool) "all-zero tiling is noop" true
    (Action_space.to_transformation cfg st action = None)

let test_to_transformation_tile () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let choices = Array.make 7 0 in
  choices.(2) <- 1 (* slot 1 of the trip-16 loop = divisor 8 *);
  let action =
    { Action_space.transform = Action_space.t_tile; tile_choices = choices; swap_choice = 0 }
  in
  match Action_space.to_transformation cfg st action with
  | Some (Schedule.Tile sizes) ->
      Alcotest.(check (array int)) "sizes" [| 0; 0; 8 |] sizes
  | _ -> Alcotest.fail "expected tile"

let test_simple_menu_and_mask () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let menu = Action_space.simple_menu cfg ~n_loops:3 in
  (* 3 tiles + 3 pars + 2 swaps + im2col + vectorize = 10 *)
  Alcotest.(check int) "menu size" 10 (Array.length menu);
  let mask = Action_space.simple_mask cfg st menu in
  Alcotest.(check bool) "vectorize allowed" true mask.(Array.length menu - 1);
  Alcotest.(check bool) "im2col masked for matmul" false mask.(Array.length menu - 2)

let test_legalize_zeroes_nondivisors () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  (* trips 8,12,16: uniform 16 only divides 16 *)
  match Action_space.legalize st (Schedule.Tile [| 16; 16; 16 |]) with
  | Some (Schedule.Tile sizes) ->
      Alcotest.(check (array int)) "fixed" [| 0; 0; 16 |] sizes
  | _ -> Alcotest.fail "expected legalized tile"

let test_legalize_par_respects_reductions () =
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  match Action_space.legalize st (Schedule.Parallelize [| 4; 4; 16 |]) with
  | Some (Schedule.Parallelize sizes) ->
      Alcotest.(check int) "reduction zeroed" 0 sizes.(2)
  | _ -> Alcotest.fail "expected legalized parallelize"

(* --- Env dynamics --- *)

let test_env_reset_and_masks () =
  let env = Env.create cfg in
  let obs = Env.reset env (Test_helpers.small_matmul ()) in
  Alcotest.(check int) "obs length" (Env_config.obs_dim cfg) (Array.length obs);
  Alcotest.(check int) "step count" 0 (Env.step_count env);
  Alcotest.(check (float 1e-9)) "speedup 1" 1.0 (Env.current_speedup env)

let test_env_vectorize_ends_episode () =
  let env = Env.create cfg in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  let r = Env.step env (Some Schedule.Vectorize) in
  Alcotest.(check bool) "terminal" true r.Env.terminal;
  Alcotest.(check bool) "reward is log speedup" true (r.Env.reward > 0.0)

let test_env_final_reward_sparse () =
  let env = Env.create (Env_config.with_reward_mode Env_config.Final cfg) in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  let r1 = Env.step env (Some (Schedule.Swap 0)) in
  Alcotest.(check (float 1e-12)) "intermediate zero" 0.0 r1.Env.reward;
  Alcotest.(check bool) "not terminal" false r1.Env.terminal

let test_env_immediate_reward_dense () =
  let env = Env.create (Env_config.with_reward_mode Env_config.Immediate cfg) in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  let r = Env.step env (Some (Schedule.Parallelize [| 4; 4; 0 |])) in
  Alcotest.(check bool) "positive immediate reward" true (r.Env.reward > 0.0)

let test_env_immediate_rewards_telescope () =
  (* Sum of immediate log-rewards equals the final log speedup. *)
  let sched =
    [ Schedule.Parallelize [| 4; 4; 0 |]; Schedule.Swap 0; Schedule.Vectorize ]
  in
  let env = Env.create (Env_config.with_reward_mode Env_config.Immediate cfg) in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  let total = List.fold_left (fun acc tr -> acc +. (Env.step env (Some tr)).Env.reward) 0.0 sched in
  let final = Env.current_speedup env in
  Alcotest.(check (float 1e-6)) "telescoping" (log final) total

let test_env_tau_limit () =
  let env = Env.create cfg in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  let last = ref None in
  for _ = 1 to cfg.Env_config.tau do
    last := Some (Env.step env (Some (Schedule.Swap 0)))
  done;
  (match !last with
  | Some r -> Alcotest.(check bool) "terminal at tau" true r.Env.terminal
  | None -> Alcotest.fail "no steps");
  (* Stepping past the end is a typed error, not a panic. *)
  let r = Env.step env (Some (Schedule.Swap 0)) in
  Alcotest.(check bool) "episode-over error" true
    (r.Env.error = Some Env_error.Episode_over);
  Alcotest.(check bool) "still terminal" true r.Env.terminal;
  Alcotest.(check (float 1e-12)) "no reward" 0.0 r.Env.reward;
  Alcotest.(check int) "no step consumed" cfg.Env_config.tau (Env.step_count env)

let test_env_step_after_vectorize_typed () =
  (* Vectorize terminates before tau; further steps must surface
     Episode_over, not reach the transform layer. *)
  let env = Env.create cfg in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  let r = Env.step env (Some Schedule.Vectorize) in
  Alcotest.(check bool) "terminal" true r.Env.terminal;
  let r2 = Env.step env (Some (Schedule.Swap 0)) in
  Alcotest.(check bool) "typed error" true
    (r2.Env.error = Some Env_error.Episode_over);
  Alcotest.(check bool) "obs echoed" true (r2.Env.obs == r.Env.obs)

let test_env_invalid_carries_reason () =
  let env = Env.create cfg in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  let r = Env.step env (Some (Schedule.Tile [| 5; 0; 0 |])) in
  Alcotest.(check bool) "invalid" true r.Env.invalid;
  (match r.Env.error with
  | Some (Env_error.Invalid_action msg) ->
      Alcotest.(check bool) "reason preserved" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected Invalid_action with the transform reason");
  Alcotest.(check bool) "not flagged degraded" false r.Env.degraded

let test_env_state_before_reset_typed () =
  let env = Env.create cfg in
  Alcotest.(check bool) "typed exception" true
    (match Env.state env with
    | exception Env_error.Error Env_error.No_episode -> true
    | _ -> false);
  Alcotest.(check bool) "state_opt is None" true (Env.state_opt env = None);
  Alcotest.(check bool) "step raises typed" true
    (match Env.step env None with
    | exception Env_error.Error Env_error.No_episode -> true
    | _ -> false)

let test_env_episode_measurement_resets () =
  let env = Env.create (Env_config.with_reward_mode Env_config.Immediate cfg) in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  ignore (Env.step env (Some (Schedule.Swap 0)));
  let ep1 = Env.episode_measurement_seconds env in
  let total1 = Env.measurement_seconds env in
  Alcotest.(check bool) "episode charged" true (ep1 > 0.0);
  Alcotest.(check (float 1e-12)) "episode = total on first episode" total1 ep1;
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  Alcotest.(check (float 1e-12)) "episode counter reset" 0.0
    (Env.episode_measurement_seconds env);
  Alcotest.(check (float 1e-12)) "cumulative counter kept" total1
    (Env.measurement_seconds env);
  ignore (Env.step env (Some (Schedule.Swap 0)));
  Alcotest.(check bool) "second episode accumulates separately" true
    (Env.episode_measurement_seconds env > 0.0
    && Env.measurement_seconds env > total1)

let test_env_invalid_action_penalized () =
  let env = Env.create cfg in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  let r = Env.step env (Some (Schedule.Tile [| 5; 0; 0 |])) in
  Alcotest.(check bool) "invalid flagged" true r.Env.invalid;
  Alcotest.(check (float 1e-9)) "penalty" cfg.Env_config.timeout_penalty r.Env.reward;
  Alcotest.(check bool) "terminal" true r.Env.terminal

let test_env_noop_consumes_step () =
  let env = Env.create cfg in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  let r = Env.step env None in
  Alcotest.(check bool) "noop" true r.Env.noop;
  Alcotest.(check int) "step consumed" 1 (Env.step_count env)

let test_env_measurement_time_accumulates () =
  let env = Env.create (Env_config.with_reward_mode Env_config.Immediate cfg) in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  let before = Env.measurement_seconds env in
  ignore (Env.step env (Some (Schedule.Swap 0)));
  Alcotest.(check bool) "charged" true (Env.measurement_seconds env > before)

let test_env_final_measures_once_per_episode () =
  let env = Env.create (Env_config.with_reward_mode Env_config.Final cfg) in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  let before = Env.measurement_seconds env in
  ignore (Env.step env (Some (Schedule.Swap 0)));
  Alcotest.(check (float 1e-12)) "no mid-episode measurement" before
    (Env.measurement_seconds env);
  ignore (Env.step env (Some Schedule.Vectorize));
  Alcotest.(check bool) "terminal measurement" true
    (Env.measurement_seconds env > before)

let test_env_schedule_accessor () =
  let env = Env.create cfg in
  ignore (Env.reset env (Test_helpers.small_matmul ()));
  ignore (Env.step env (Some (Schedule.Swap 1)));
  Alcotest.(check string) "schedule" "S(1)" (Schedule.to_string (Env.schedule env))

let qcheck_env_random_episodes_terminate =
  QCheck.Test.make ~name:"random masked episodes always terminate legally" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let env = Env.create cfg in
      let policy = Policy.create ~hidden:8 ~backbone_layers:1 rng cfg in
      let op =
        Generator.random_op rng
          (Util.Rng.choice rng [| "matmul"; "conv2d"; "maxpool"; "add"; "relu" |])
      in
      let obs = ref (Env.reset env op) in
      let steps = ref 0 in
      let terminal = ref false in
      while not !terminal do
        let masks = Env.masks env in
        let action, _, _ = Policy.act rng policy ~obs:!obs ~masks in
        let r = Env.step_hierarchical env action in
        if r.Env.invalid then
          QCheck.Test.fail_report "masked action was rejected by the IR layer";
        obs := r.Env.obs;
        incr steps;
        terminal := r.Env.terminal
      done;
      !steps <= cfg.Env_config.tau)

let suite =
  [
    Alcotest.test_case "obs dim formula" `Quick test_obs_dim_formula;
    Alcotest.test_case "config validates" `Quick test_config_validates;
    Alcotest.test_case "cardinality formula" `Quick test_cardinality_formula;
    Alcotest.test_case "observation length" `Quick test_observation_length;
    Alcotest.test_case "loop info" `Quick test_observation_loop_info;
    Alcotest.test_case "access matrix" `Quick test_observation_access_matrix;
    Alcotest.test_case "interchange reflected" `Quick test_observation_reflects_interchange;
    Alcotest.test_case "history tracks" `Quick test_observation_history_tracks;
    Alcotest.test_case "math counts" `Quick test_observation_math_counts_in_vector;
    Alcotest.test_case "rejects oversized op" `Quick test_observation_rejects_oversized;
    Alcotest.test_case "masks initial matmul" `Quick test_masks_initial_matmul;
    Alcotest.test_case "masks divisors" `Quick test_masks_divisors;
    Alcotest.test_case "masks padded loops" `Quick test_masks_padded_loops;
    Alcotest.test_case "masks conv im2col" `Quick test_masks_conv_im2col;
    Alcotest.test_case "all-zero tile is noop" `Quick test_to_transformation_noop;
    Alcotest.test_case "tile conversion" `Quick test_to_transformation_tile;
    Alcotest.test_case "simple menu and mask" `Quick test_simple_menu_and_mask;
    Alcotest.test_case "legalize zeroes non-divisors" `Quick
      test_legalize_zeroes_nondivisors;
    Alcotest.test_case "legalize par reductions" `Quick
      test_legalize_par_respects_reductions;
    Alcotest.test_case "env reset" `Quick test_env_reset_and_masks;
    Alcotest.test_case "vectorize ends episode" `Quick test_env_vectorize_ends_episode;
    Alcotest.test_case "final reward sparse" `Quick test_env_final_reward_sparse;
    Alcotest.test_case "immediate reward dense" `Quick test_env_immediate_reward_dense;
    Alcotest.test_case "immediate rewards telescope" `Quick
      test_env_immediate_rewards_telescope;
    Alcotest.test_case "tau limit" `Quick test_env_tau_limit;
    Alcotest.test_case "step after vectorize typed" `Quick
      test_env_step_after_vectorize_typed;
    Alcotest.test_case "invalid carries reason" `Quick
      test_env_invalid_carries_reason;
    Alcotest.test_case "state before reset typed" `Quick
      test_env_state_before_reset_typed;
    Alcotest.test_case "episode measurement resets" `Quick
      test_env_episode_measurement_resets;
    Alcotest.test_case "invalid action penalized" `Quick test_env_invalid_action_penalized;
    Alcotest.test_case "noop consumes step" `Quick test_env_noop_consumes_step;
    Alcotest.test_case "measurement time accumulates" `Quick
      test_env_measurement_time_accumulates;
    Alcotest.test_case "final measures once" `Quick
      test_env_final_measures_once_per_episode;
    Alcotest.test_case "schedule accessor" `Quick test_env_schedule_accessor;
    QCheck_alcotest.to_alcotest qcheck_env_random_episodes_terminate;
  ]
