(* Additional environment behaviours: adaptive timeout, render, and the
   timeout path through the env. *)

let cfg = Env_config.default

let pathological_schedule =
  (* Tile-by-1 then parallelize-by-1: thousands of trip-1 parallel
     region launches — three orders of magnitude slower than the base. *)
  [ Schedule.Tile [| 1; 1 |]; Schedule.Parallelize [| 1; 1 |] ]

let test_adaptive_timeout_triggers () =
  let ev = Evaluator.create () in
  let op = Linalg.add [| 64; 64 |] in
  let st = Result.get_ok (Sched_state.apply_all op pathological_schedule) in
  (match Evaluator.measure ev st with
  | `Timeout capped ->
      Alcotest.(check (float 1e-12)) "capped at 10x base"
        (Evaluator.timeout_factor *. Evaluator.base_seconds ev op)
        capped
  | `Seconds _ -> Alcotest.fail "expected a timeout");
  Alcotest.(check (float 1e-9)) "speedup floored at 1/10"
    (1.0 /. Evaluator.timeout_factor)
    (Evaluator.speedup ev st)

let test_env_timeout_penalty () =
  let env = Env.create (Env_config.with_reward_mode Env_config.Immediate cfg) in
  ignore (Env.reset env (Linalg.add [| 64; 64 |]));
  ignore (Env.step env (Some (Schedule.Tile [| 1; 1 |])));
  let r = Env.step env (Some (Schedule.Parallelize [| 1; 1 |])) in
  Alcotest.(check bool) "timed out" true r.Env.timed_out;
  Alcotest.(check (float 1e-9)) "penalty reward" cfg.Env_config.timeout_penalty
    r.Env.reward;
  Alcotest.(check bool) "terminal" true r.Env.terminal

let test_env_timeout_final_mode () =
  let env = Env.create (Env_config.with_reward_mode Env_config.Final cfg) in
  ignore (Env.reset env (Linalg.add [| 64; 64 |]));
  let r1 = Env.step env (Some (Schedule.Tile [| 1; 1 |])) in
  Alcotest.(check bool) "no mid-episode timeout check in Final mode" false
    r1.Env.timed_out;
  ignore (Env.step env (Some (Schedule.Parallelize [| 1; 1 |])));
  let r = Env.step env (Some Schedule.Vectorize) in
  Alcotest.(check bool) "terminal timeout" true r.Env.timed_out;
  Alcotest.(check (float 1e-9)) "penalty" cfg.Env_config.timeout_penalty r.Env.reward

let test_render_states () =
  let env = Env.create cfg in
  Alcotest.(check string) "before reset" "<no episode: call reset>" (Env.render env);
  ignore (Env.reset env (Linalg.matmul ~m:64 ~n:64 ~k:64 ()));
  let r0 = Env.render env in
  Alcotest.(check bool) "mentions op" true
    (Astring_contains.contains r0 "matmul_64x64x64");
  Alcotest.(check bool) "empty schedule" true (Astring_contains.contains r0 "<empty>");
  ignore (Env.step env (Some (Schedule.Swap 1)));
  let r1 = Env.render env in
  Alcotest.(check bool) "schedule shown" true (Astring_contains.contains r1 "S(1)")

let suite =
  [
    Alcotest.test_case "adaptive timeout triggers" `Quick test_adaptive_timeout_triggers;
    Alcotest.test_case "env timeout penalty (Immediate)" `Quick test_env_timeout_penalty;
    Alcotest.test_case "env timeout penalty (Final)" `Quick test_env_timeout_final_mode;
    Alcotest.test_case "render" `Quick test_render_states;
  ]
