(* The extended op family (beyond the paper's five benchmark kinds):
   batch matmul, depthwise conv, average pooling, elementwise family. *)

let test_batch_matmul_reference () =
  (* Batch of two 2x2 products. *)
  let op = Linalg.batch_matmul ~b:2 ~m:2 ~n:2 ~k:2 () in
  Alcotest.(check int) "four loops" 4 (Linalg.n_loops op);
  let a = [| 1.; 2.; 3.; 4.; 1.; 0.; 0.; 1. |] in
  let b = [| 5.; 6.; 7.; 8.; 9.; 10.; 11.; 12. |] in
  let c = Linalg.execute_reference op [ ("A", a); ("B", b) ] in
  Alcotest.(check (array (float 1e-9))) "products"
    [| 19.; 22.; 43.; 50.; 9.; 10.; 11.; 12. |]
    c

let test_batch_matmul_schedule_preserves () =
  Test_helpers.check_schedule_preserves (Linalg.batch_matmul ~b:2 ~m:4 ~n:6 ~k:8 ())
    [ Schedule.Parallelize [| 2; 2; 0; 0 |]; Schedule.Tile [| 0; 2; 3; 4 |];
      Schedule.Swap 2; Schedule.Vectorize ]

let test_depthwise_conv_reference () =
  (* 1x3x3x2 input, 3x3 kernel of ones per channel: output = per-channel
     window sums. *)
  let op =
    Linalg.depthwise_conv2d
      { Linalg.batch = 1; in_h = 3; in_w = 3; channels = 2; kernel_h = 3;
        kernel_w = 3; filters = 1; stride = 1 }
  in
  Alcotest.(check int) "six loops" 6 (Linalg.n_loops op);
  let input = Array.init 18 (fun i -> if i mod 2 = 0 then 1.0 else 2.0) in
  let filter = Array.make 18 1.0 in
  let out = Linalg.execute_reference op [ ("input", input); ("filter", filter) ] in
  Alcotest.(check (array (float 1e-9))) "channel sums" [| 9.0; 18.0 |] out

let test_depthwise_conv_schedule_preserves () =
  let op =
    Linalg.depthwise_conv2d
      { Linalg.batch = 1; in_h = 6; in_w = 6; channels = 4; kernel_h = 3;
        kernel_w = 3; filters = 1; stride = 1 }
  in
  Test_helpers.check_schedule_preserves op
    [ Schedule.Tile [| 0; 2; 2; 2; 0; 0 |]; Schedule.Vectorize ]

let test_depthwise_not_im2col () =
  let op =
    Linalg.depthwise_conv2d
      { Linalg.batch = 1; in_h = 4; in_w = 4; channels = 2; kernel_h = 2;
        kernel_w = 2; filters = 1; stride = 2 }
  in
  Alcotest.(check bool) "no im2col" false (Linalg.is_conv op);
  Alcotest.(check bool) "mask excludes" false
    (Sched_state.can_im2col (Sched_state.init op))

let test_avgpool_reference () =
  let op =
    Linalg.avgpool
      { Linalg.p_batch = 1; p_in_h = 4; p_in_w = 4; p_channels = 1;
        p_kernel = 2; p_stride = 2 }
  in
  let image = Array.init 16 (fun i -> float_of_int i) in
  let out = Linalg.execute_reference op [ ("input", image) ] in
  Alcotest.(check (array (float 1e-9))) "quadrant means" [| 2.5; 4.5; 10.5; 12.5 |] out

let test_avgpool_schedule_preserves () =
  let op =
    Linalg.avgpool
      { Linalg.p_batch = 1; p_in_h = 8; p_in_w = 8; p_channels = 4;
        p_kernel = 2; p_stride = 2 }
  in
  Test_helpers.check_schedule_preserves op
    [ Schedule.Parallelize [| 0; 2; 2; 0; 0; 0 |]; Schedule.Vectorize ]

let test_elementwise_family_reference () =
  let x = [| 4.0; 9.0 |] and y = [| 2.0; 3.0 |] in
  let run op inputs = Linalg.execute_reference op inputs in
  Alcotest.(check (array (float 1e-9))) "mul" [| 8.0; 27.0 |]
    (run (Linalg.binary Linalg.Mul_k [| 2 |]) [ ("in0", x); ("in1", y) ]);
  Alcotest.(check (array (float 1e-9))) "sub" [| 2.0; 6.0 |]
    (run (Linalg.binary Linalg.Sub_k [| 2 |]) [ ("in0", x); ("in1", y) ]);
  Alcotest.(check (array (float 1e-9))) "div" [| 2.0; 3.0 |]
    (run (Linalg.binary Linalg.Div_k [| 2 |]) [ ("in0", x); ("in1", y) ]);
  Alcotest.(check (array (float 1e-6))) "exp" [| exp 4.0; exp 9.0 |]
    (run (Linalg.unary Linalg.Exp_k [| 2 |]) [ ("in0", x) ]);
  Alcotest.(check (array (float 1e-6))) "log" [| log 4.0; log 9.0 |]
    (run (Linalg.unary Linalg.Log_k [| 2 |]) [ ("in0", x) ])

let test_exp_log_feature_counters () =
  (* The paper's exp/log observation counters finally light up. *)
  let counts op = Linalg.math_op_counts op in
  Alcotest.(check (array int)) "exp counted" [| 0; 0; 0; 0; 1; 0 |]
    (counts (Linalg.unary Linalg.Exp_k [| 4 |]));
  Alcotest.(check (array int)) "log counted" [| 0; 0; 0; 0; 0; 1 |]
    (counts (Linalg.unary Linalg.Log_k [| 4 |]));
  Alcotest.(check (array int)) "div counted" [| 0; 0; 0; 1; 0; 0 |]
    (counts (Linalg.binary Linalg.Div_k [| 4 |]))

let test_bias_add_reference () =
  let op = Linalg.bias_add [| 2; 3 |] in
  let x = [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let bias = [| 10.; 20.; 30. |] in
  let out = Linalg.execute_reference op [ ("x", x); ("bias", bias) ] in
  Alcotest.(check (array (float 1e-9))) "broadcast add"
    [| 11.; 22.; 33.; 14.; 25.; 36. |] out

let test_bias_add_broadcast_matrix () =
  (* The bias operand's access matrix has a single non-zero entry in the
     last loop column. *)
  let op = Linalg.bias_add [| 4; 8 |] in
  let m = Affine.to_matrix op.Linalg.inputs.(1).Linalg.map in
  Alcotest.(check (array (array int))) "broadcast row" [| [| 0; 1; 0 |] |] m

let test_bias_add_schedule_preserves () =
  Test_helpers.check_schedule_preserves (Linalg.bias_add [| 8; 16 |])
    [ Schedule.Parallelize [| 4; 0 |]; Schedule.Tile [| 2; 4 |]; Schedule.Vectorize ]

let test_new_ops_fit_env () =
  let cfg = Env_config.default in
  let rng = Util.Rng.create 3 in
  List.iter
    (fun kind ->
      let op = Generator.random_op rng kind in
      let st = Sched_state.init op in
      Alcotest.(check int)
        (kind ^ " obs length")
        (Env_config.obs_dim cfg)
        (Array.length (Observation.extract cfg st)))
    [ "batch_matmul"; "dwconv"; "avgpool"; "mul"; "sub"; "div"; "exp"; "log"; "bias_add" ]

let test_new_ops_autoschedule () =
  let ev = Evaluator.create () in
  let config =
    { Auto_scheduler.default_config with Auto_scheduler.max_schedules = 200 }
  in
  List.iter
    (fun op ->
      let r = Auto_scheduler.search ~config ev op in
      Alcotest.(check bool)
        (Linalg.kind_name op ^ " improves")
        true
        (r.Auto_scheduler.best_speedup > 1.0))
    [
      Linalg.batch_matmul ~b:4 ~m:128 ~n:128 ~k:128 ();
      Linalg.depthwise_conv2d
        { Linalg.batch = 1; in_h = 56; in_w = 56; channels = 64; kernel_h = 3;
          kernel_w = 3; filters = 1; stride = 1 };
      Linalg.avgpool
        { Linalg.p_batch = 1; p_in_h = 56; p_in_w = 56; p_channels = 64;
          p_kernel = 2; p_stride = 2 };
      Linalg.bias_add [| 1024; 512 |];
    ]

let test_new_specs_roundtrip () =
  List.iter
    (fun spec ->
      match Op_spec.parse spec with
      | Error e -> Alcotest.failf "parse %s: %s" spec e
      | Ok op -> (
          match Op_spec.to_spec op with
          | None -> Alcotest.failf "no spec for %s" spec
          | Some s2 ->
              let op2 = Result.get_ok (Op_spec.parse s2) in
              Alcotest.(check (array int)) (spec ^ " domain") op.Linalg.domain
                op2.Linalg.domain))
    [
      "batch_matmul:8x128x128x64"; "dwconv:56x56x64,k3,s1"; "avgpool:56x56x128,k2,s2";
      "mul:1024x1024"; "sub:256x256"; "div:128x128"; "exp:512x512"; "log:64x64";
      "bias_add:1024x512";
    ]

let qcheck_elementwise_preserve =
  QCheck.Test.make ~name:"random schedules preserve extended elementwise ops" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let kind = Util.Rng.choice rng [| "mul"; "sub"; "exp"; "bias_add" |] in
      let op =
        match kind with
        | "mul" -> Linalg.binary Linalg.Mul_k [| 8; 16 |]
        | "sub" -> Linalg.binary Linalg.Sub_k [| 8; 16 |]
        | "exp" -> Linalg.unary Linalg.Exp_k [| 8; 16 |]
        | _ -> Linalg.bias_add [| 8; 16 |]
      in
      Test_helpers.check_schedule_preserves ~seed op
        [ Schedule.Tile [| 4; 4 |]; Schedule.Swap 0; Schedule.Vectorize ];
      true)

let suite =
  [
    Alcotest.test_case "batch matmul reference" `Quick test_batch_matmul_reference;
    Alcotest.test_case "batch matmul preserves" `Quick
      test_batch_matmul_schedule_preserves;
    Alcotest.test_case "depthwise conv reference" `Quick test_depthwise_conv_reference;
    Alcotest.test_case "depthwise preserves" `Quick
      test_depthwise_conv_schedule_preserves;
    Alcotest.test_case "depthwise not im2col" `Quick test_depthwise_not_im2col;
    Alcotest.test_case "avgpool reference" `Quick test_avgpool_reference;
    Alcotest.test_case "avgpool preserves" `Quick test_avgpool_schedule_preserves;
    Alcotest.test_case "elementwise family" `Quick test_elementwise_family_reference;
    Alcotest.test_case "exp/log counters" `Quick test_exp_log_feature_counters;
    Alcotest.test_case "bias_add reference" `Quick test_bias_add_reference;
    Alcotest.test_case "bias_add broadcast matrix" `Quick
      test_bias_add_broadcast_matrix;
    Alcotest.test_case "bias_add preserves" `Quick test_bias_add_schedule_preserves;
    Alcotest.test_case "new ops fit env" `Quick test_new_ops_fit_env;
    Alcotest.test_case "new ops autoschedule" `Quick test_new_ops_autoschedule;
    Alcotest.test_case "new specs roundtrip" `Quick test_new_specs_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_elementwise_preserve;
  ]
