(* Printer/parser round-trip property: for randomized valid nests —
   including Parallel/Vector loop kinds and negative subscript
   coefficients (reversed accesses) — [Ir_parser.parse] must be a left
   inverse of [Ir_printer.to_string], structurally. *)

let check = Alcotest.(check bool)

let expr_range (ubs : int array) (e : Affine.expr) =
  let lo = ref e.Affine.const and hi = ref e.Affine.const in
  Array.iteri
    (fun k c ->
      let v = c * (ubs.(k) - 1) in
      lo := !lo + min 0 v;
      hi := !hi + max 0 v)
    e.Affine.coeffs;
  (!lo, !hi)

let gen_subscript rng n ubs =
  let k = Util.Rng.int rng n in
  let e =
    match Util.Rng.int rng 5 with
    | 0 -> Affine.dim n k
    | 1 -> Affine.expr ~const:(Util.Rng.int rng 3) n [ (k, 1) ]
    | 2 -> Affine.expr n [ (k, -1) ] (* negative coefficient *)
    | 3 -> Affine.expr ~const:(Util.Rng.int rng 2) n [ (k, 2) ]
    | _ when n >= 2 -> Affine.expr n [ (k, 1); ((k + 1) mod n, 1) ]
    | _ -> Affine.expr ~const:1 n [ (k, 1) ]
  in
  let lo, _ = expr_range ubs e in
  if lo < 0 then { e with Affine.const = e.Affine.const - lo } else e

let gen_nest rng i =
  let n = 1 + Util.Rng.int rng 3 in
  let ubs = Array.init n (fun _ -> 2 + Util.Rng.int rng 5) in
  let rank = 1 + Util.Rng.int rng (min n 2) in
  let kinds =
    (* at most one parallel band prefix and a vector innermost, like real
       transformed nests — plus arbitrary mixes, which the grammar also
       allows *)
    Array.init n (fun k ->
        match Util.Rng.int rng 4 with
        | 0 -> Loop_nest.Parallel
        | 1 when k = n - 1 -> Loop_nest.Vector
        | _ -> Loop_nest.Seq)
  in
  let subs () = Array.init rank (fun _ -> gen_subscript rng n ubs) in
  let store_idx = subs () and load_idx = subs () in
  let shape =
    Array.init rank (fun d ->
        let _, h1 = expr_range ubs store_idx.(d) in
        let _, h2 = expr_range ubs load_idx.(d) in
        max h1 h2 + 1)
  in
  let rhs =
    let ld = Loop_nest.Load { Loop_nest.buf = "src"; idx = load_idx } in
    match Util.Rng.int rng 3 with
    | 0 -> Loop_nest.Binop (Linalg.Add, ld, Loop_nest.Const 1.5)
    | 1 -> Loop_nest.Unop (Linalg.Exp, ld)
    | _ -> Loop_nest.Binop (Linalg.Max, ld, Loop_nest.Const 0.0)
  in
  {
    Loop_nest.name = Printf.sprintf "roundtrip_%d" i;
    loops =
      Array.init n (fun k ->
          { Loop_nest.ub = ubs.(k); kind = kinds.(k); origin = k });
    body = [ Loop_nest.Store ({ Loop_nest.buf = "dst"; idx = store_idx }, rhs) ];
    buffers = [ ("src", shape); ("dst", shape) ];
    inits = (if Util.Rng.int rng 2 = 0 then [ ("dst", 0.0) ] else []);
  }

let test_roundtrip () =
  let rng = Util.Rng.create 77 in
  let saw_vector = ref false
  and saw_parallel = ref false
  and saw_negative = ref false in
  for i = 1 to 200 do
    let nest = gen_nest rng i in
    (match Loop_nest.validate nest with
    | Ok () -> ()
    | Error e -> Alcotest.failf "generator made an invalid nest: %s" e);
    Array.iter
      (fun (l : Loop_nest.loop) ->
        if l.Loop_nest.kind = Loop_nest.Vector then saw_vector := true;
        if l.Loop_nest.kind = Loop_nest.Parallel then saw_parallel := true)
      nest.Loop_nest.loops;
    List.iter
      (fun (r : Loop_nest.mem_ref) ->
        Array.iter
          (fun (e : Affine.expr) ->
            if Array.exists (fun c -> c < 0) e.Affine.coeffs then
              saw_negative := true)
          r.Loop_nest.idx)
      (Loop_nest.stores_of_body nest @ Loop_nest.loads_of_body nest);
    let text = Ir_printer.to_string nest in
    match Ir_parser.parse_result text with
    | Error e -> Alcotest.failf "re-parse failed: %s@.on:@.%s" e text
    | Ok nest' ->
        if nest <> nest' then
          Alcotest.failf "round-trip changed the nest:@.%s@.vs@.%s" text
            (Ir_printer.to_string nest')
  done;
  check "corpus included a Vector loop" true !saw_vector;
  check "corpus included a Parallel loop" true !saw_parallel;
  check "corpus included a negative coefficient" true !saw_negative

let suite =
  [
    Alcotest.test_case "200 random nests round-trip through the printer" `Quick
      test_roundtrip;
  ]
