(* CLI operation specs. *)

let parse_ok s =
  match Op_spec.parse s with
  | Ok op -> op
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_matmul_spec () =
  let op = parse_ok "matmul:64x128x256" in
  Alcotest.(check (array int)) "domain" [| 64; 128; 256 |] op.Linalg.domain

let test_conv_spec () =
  let op = parse_ok "conv2d:56x56x64,k3,f128,s1" in
  Alcotest.(check string) "kind" "conv2d" (Linalg.kind_name op);
  Alcotest.(check (array int)) "domain" [| 1; 54; 54; 128; 3; 3; 64 |] op.Linalg.domain

let test_conv_spec_batch () =
  let op = parse_ok "conv2d:28x28x32,k1,f64,s1,b4" in
  Alcotest.(check int) "batch" 4 op.Linalg.domain.(0)

let test_maxpool_spec () =
  let op = parse_ok "maxpool:112x112x64,k2,s2" in
  Alcotest.(check string) "kind" "maxpool" (Linalg.kind_name op);
  Alcotest.(check (array int)) "domain" [| 1; 56; 56; 64; 2; 2 |] op.Linalg.domain

let test_elementwise_specs () =
  Alcotest.(check (array int)) "add" [| 1024; 512 |] (parse_ok "add:1024x512").Linalg.domain;
  Alcotest.(check (array int)) "relu 4d" [| 1; 7; 7; 512 |]
    (parse_ok "relu:1x7x7x512").Linalg.domain

let test_bad_specs () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true (Result.is_error (Op_spec.parse s)))
    [
      "matmul:64x128"; "matmul:64x128x0"; "conv2d:56x56x64"; "conv2d:56x56x64,k3,s1";
      "softmax:64"; "matmul"; "add:"; "maxpool:8x8x4,k16,s2"; "add:1x2x3x4x5";
    ]

let test_examples_parse () =
  List.iter (fun s -> ignore (parse_ok s)) Op_spec.examples

let test_to_spec_roundtrip () =
  List.iter
    (fun s ->
      let op = parse_ok s in
      match Op_spec.to_spec op with
      | None -> Alcotest.failf "no spec for %s" s
      | Some s2 ->
          let op2 = parse_ok s2 in
          Alcotest.(check (array int)) (s ^ " domain survives") op.Linalg.domain
            op2.Linalg.domain)
    Op_spec.examples

let suite =
  [
    Alcotest.test_case "matmul spec" `Quick test_matmul_spec;
    Alcotest.test_case "conv spec" `Quick test_conv_spec;
    Alcotest.test_case "conv batch" `Quick test_conv_spec_batch;
    Alcotest.test_case "maxpool spec" `Quick test_maxpool_spec;
    Alcotest.test_case "elementwise specs" `Quick test_elementwise_specs;
    Alcotest.test_case "bad specs rejected" `Quick test_bad_specs;
    Alcotest.test_case "examples parse" `Quick test_examples_parse;
    Alcotest.test_case "to_spec roundtrip" `Quick test_to_spec_roundtrip;
  ]
