(* Multi-action policy network: action validity, log-prob consistency
   between sampling and batch re-evaluation, and the flat ablation
   policy. *)

let cfg = Env_config.default

let test_action_within_masks () =
  let rng = Util.Rng.create 31 in
  let policy = Policy.create ~hidden:16 ~backbone_layers:2 rng cfg in
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let obs = Observation.extract cfg st in
  let masks = Action_space.masks cfg st in
  for _ = 1 to 100 do
    let action, _, _ = Policy.act rng policy ~obs ~masks in
    Alcotest.(check bool) "transform allowed" true
      masks.Action_space.t_mask.(action.Action_space.transform);
    if action.Action_space.transform = Action_space.t_tile then
      Array.iteri
        (fun l c ->
          Alcotest.(check bool) "tile choice masked" true
            masks.Action_space.tile_mask.(l).(c))
        action.Action_space.tile_choices;
    if action.Action_space.transform = Action_space.t_parallelize then
      Array.iteri
        (fun l c ->
          Alcotest.(check bool) "par choice masked" true
            masks.Action_space.par_mask.(l).(c))
        action.Action_space.tile_choices;
    if action.Action_space.transform = Action_space.t_interchange then
      Alcotest.(check bool) "swap masked" true
        masks.Action_space.swap_mask.(action.Action_space.swap_choice)
  done

let test_logp_matches_evaluate () =
  (* The log-prob returned by act must equal the one evaluate recomputes
     for the same (obs, action, masks). *)
  let rng = Util.Rng.create 32 in
  let policy = Policy.create ~hidden:16 ~backbone_layers:2 rng cfg in
  let st = Sched_state.init (Test_helpers.small_conv ()) in
  let obs = Observation.extract cfg st in
  let masks = Action_space.masks cfg st in
  let pp = Policy.ppo_policy policy in
  for _ = 1 to 25 do
    let action, logp, value = Policy.act rng policy ~obs ~masks in
    let tape = Autodiff.Tape.create () in
    let ev =
      pp.Ppo.evaluate tape
        [| { Policy.s_obs = obs; s_action = action; s_masks = masks } |]
    in
    Alcotest.(check (float 1e-6)) "log prob consistent" logp
      (Tensor.get (Autodiff.value ev.Ppo.log_prob) 0);
    Alcotest.(check (float 1e-6)) "value consistent" value
      (Tensor.get (Autodiff.value ev.Ppo.value) 0)
  done

let test_greedy_deterministic () =
  let rng = Util.Rng.create 33 in
  let policy = Policy.create ~hidden:16 ~backbone_layers:2 rng cfg in
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let obs = Observation.extract cfg st in
  let masks = Action_space.masks cfg st in
  let a1 = Policy.act_greedy policy ~obs ~masks in
  let a2 = Policy.act_greedy policy ~obs ~masks in
  Alcotest.(check bool) "same action" true (a1 = a2)

let test_entropy_positive () =
  let rng = Util.Rng.create 34 in
  let policy = Policy.create ~hidden:16 ~backbone_layers:2 rng cfg in
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let obs = Observation.extract cfg st in
  let masks = Action_space.masks cfg st in
  let action, _, _ = Policy.act rng policy ~obs ~masks in
  let tape = Autodiff.Tape.create () in
  let ev =
    (Policy.ppo_policy policy).Ppo.evaluate tape
      [| { Policy.s_obs = obs; s_action = action; s_masks = masks } |]
  in
  Alcotest.(check bool) "entropy > 0" true
    (Tensor.get (Autodiff.value ev.Ppo.entropy) 0 > 0.0)

let test_param_count_scales () =
  let rng = Util.Rng.create 35 in
  let small = Policy.create ~hidden:8 ~backbone_layers:1 rng cfg in
  let large = Policy.create ~hidden:64 ~backbone_layers:2 rng cfg in
  Alcotest.(check bool) "more params" true
    (Policy.param_count large > Policy.param_count small)

let test_paper_sized_network () =
  (* The default (512x4 backbone) builds and has millions of params. *)
  let rng = Util.Rng.create 36 in
  let policy = Policy.create rng cfg in
  Alcotest.(check bool) "at least 1M params" true (Policy.param_count policy > 1_000_000)

let test_flat_policy_act_and_evaluate () =
  let rng = Util.Rng.create 37 in
  let policy = Flat_policy.create ~hidden:16 ~backbone_layers:2 rng cfg ~n_loops:3 in
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let obs = Observation.extract cfg st in
  let menu = Flat_policy.menu policy in
  let mask = Action_space.simple_mask cfg st menu in
  let choice, logp, _ = Flat_policy.act rng policy ~obs ~mask in
  Alcotest.(check bool) "choice masked" true mask.(choice);
  let tape = Autodiff.Tape.create () in
  let ev =
    (Flat_policy.ppo_policy policy).Ppo.evaluate tape
      [| { Flat_policy.f_obs = obs; f_choice = choice; f_mask = mask } |]
  in
  Alcotest.(check (float 1e-6)) "logp consistent" logp
    (Tensor.get (Autodiff.value ev.Ppo.log_prob) 0)

let test_flat_greedy_masked () =
  let rng = Util.Rng.create 38 in
  let policy = Flat_policy.create ~hidden:16 ~backbone_layers:1 rng cfg ~n_loops:3 in
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let obs = Observation.extract cfg st in
  let mask = Action_space.simple_mask cfg st (Flat_policy.menu policy) in
  let c = Flat_policy.act_greedy policy ~obs ~mask in
  Alcotest.(check bool) "greedy masked" true mask.(c)

let suite =
  [
    Alcotest.test_case "actions within masks" `Quick test_action_within_masks;
    Alcotest.test_case "logp matches evaluate" `Quick test_logp_matches_evaluate;
    Alcotest.test_case "greedy deterministic" `Quick test_greedy_deterministic;
    Alcotest.test_case "entropy positive" `Quick test_entropy_positive;
    Alcotest.test_case "param count scales" `Quick test_param_count_scales;
    Alcotest.test_case "paper-sized network" `Quick test_paper_sized_network;
    Alcotest.test_case "flat policy act/evaluate" `Quick test_flat_policy_act_and_evaluate;
    Alcotest.test_case "flat greedy masked" `Quick test_flat_greedy_masked;
  ]
