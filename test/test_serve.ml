(* The serving subsystem (lib/serve), layer by layer:

   - Protocol: encode/decode identity on randomized requests and
     responses, and totality under fuzz — malformed lines come back as
     [Error _], never as an exception;
   - Batcher: admission bound, deadline expiry, flush-on-max-batch,
     flush-on-timeout, forced drain — all on a scripted clock;
   - Metrics: counters, histogram quantiles, Prometheus rendering;
   - Engine: target resolution (spec / IR / unsupported), raise_nest
     round-trips, cache behavior, batch-independent determinism;
   - Server: the end-to-end acceptance property — identical requests
     produce byte-identical reply lines whether or not they hit the
     cache — plus shed, deadline, drain idempotence. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Protocol                                                           *)
(* ------------------------------------------------------------------ *)

(* Strings that stress the escaper: spaces, newlines, percents, UTF-8
   bytes, empty. *)
let gnarly_string =
  QCheck.Gen.(
    oneof
      [
        string_size ~gen:printable (int_range 0 30);
        string_size ~gen:(char_range '\000' '\255') (int_range 0 20);
        oneofl [ ""; " "; "%"; "%2"; "a b"; "line\nbreak"; "tab\there"; "100%" ];
      ])

let gen_id = QCheck.Gen.(string_size ~gen:printable (int_range 1 12))

let gen_request =
  QCheck.Gen.(
    let* id = gen_id in
    let* deadline_ms = opt (int_range 0 100000) in
    oneof
      [
        (let* s = gnarly_string in
         oneofl
           [
             Serve.Protocol.Optimize
               { id; target = Serve.Protocol.Spec s; deadline_ms };
             Serve.Protocol.Optimize
               { id; target = Serve.Protocol.Ir s; deadline_ms };
           ]);
        return (Serve.Protocol.Stats { id });
        return (Serve.Protocol.Metrics { id });
        return (Serve.Protocol.Ping { id });
      ])

let gen_response =
  QCheck.Gen.(
    let* id = gen_id in
    let* s = gnarly_string in
    let* f = float_bound_inclusive 1e6 in
    let* code =
      oneofl
        Serve.Protocol.
          [
            Parse_error; Invalid_request; Unsupported; Overloaded;
            Deadline_exceeded; Env_failure; Shutting_down; Unavailable;
            Upstream_failure;
          ]
    in
    oneofl
      [
        Serve.Protocol.Ok_reply
          { r_id = id; schedule = s; speedup = f; policy_digest = "d41d8cd9" };
        Serve.Protocol.Error_reply { e_id = id; code; message = s };
        Serve.Protocol.Stats_reply { s_id = id; body = s };
        Serve.Protocol.Metrics_reply { m_id = id; body = s };
        Serve.Protocol.Pong { p_id = id };
      ])

let qcheck_escape_roundtrip =
  QCheck.Test.make ~name:"escape/unescape identity" ~count:500
    (QCheck.make gnarly_string) (fun s ->
      match Serve.Protocol.unescape (Serve.Protocol.escape s) with
      | Ok s' -> String.equal s s'
      | Error _ -> false)

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"request encode/decode identity" ~count:500
    (QCheck.make gen_request) (fun req ->
      match Serve.Protocol.(decode_request (encode_request req)) with
      | Ok req' -> req = req'
      | Error _ -> false)

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"response encode/decode identity" ~count:500
    (QCheck.make gen_response) (fun resp ->
      match Serve.Protocol.(decode_response (encode_response resp)) with
      | Ok resp' -> resp = resp'
      | Error _ -> false)

(* Fuzz: random garbage and mutated valid lines must decode to a typed
   [Error], never raise. *)
let gen_fuzz_line =
  QCheck.Gen.(
    oneof
      [
        string_size ~gen:(char_range '\000' '\255') (int_range 0 60);
        (let* req = gen_request in
         let line = Serve.Protocol.encode_request req in
         let* i = int_range 0 (max 0 (String.length line - 1)) in
         let* c = char_range '\000' '\255' in
         return (String.mapi (fun j ch -> if j = i then c else ch) line));
        (let* req = gen_request in
         let* n = int_range 0 10 in
         let line = Serve.Protocol.encode_request req in
         return (String.sub line 0 (min n (String.length line))));
      ])

let qcheck_decode_never_raises =
  QCheck.Test.make ~name:"decoders are total under fuzz" ~count:1000
    (QCheck.make gen_fuzz_line) (fun line ->
      (match Serve.Protocol.decode_request line with
      | Ok _ | Error _ -> ());
      (match Serve.Protocol.decode_response line with
      | Ok _ | Error _ -> ());
      true)

let test_protocol_malformed () =
  let bad line =
    match Serve.Protocol.decode_request line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "decoded malformed line %S" line
  in
  bad "";
  bad "mrs1";
  bad "mrs2 id ping";
  bad "http GET /";
  bad "mrs1 id warble";
  bad "mrs1 id optimize";
  bad "mrs1 id optimize spec";
  bad "mrs1 id optimize blob x";
  bad "mrs1 id optimize spec x notanumber";
  bad "mrs1 id optimize spec x -5";
  bad "mrs1 id optimize spec x 5 extra";
  bad "mrs1 id ping extra";
  bad "mrs1 %2 ping";
  bad "mrs1 %ZZ ping";
  (* an id that unescapes to the empty string is unanswerable *)
  bad "mrs1  ping";
  match Serve.Protocol.decode_request "mrs1 id optimize spec matmul:8x8x8 250" with
  | Ok
      (Serve.Protocol.Optimize
        { id = "id"; target = Serve.Protocol.Spec "matmul:8x8x8";
          deadline_ms = Some 250 }) -> ()
  | _ -> Alcotest.fail "valid optimize line did not decode"

(* ------------------------------------------------------------------ *)
(* Batcher (scripted clock)                                           *)
(* ------------------------------------------------------------------ *)

let bcfg ?(max_queue = 8) ?(max_batch = 3) ?(max_wait_s = 0.010) () =
  { Serve.Batcher.max_queue; max_batch; max_wait_s }

let payloads items = List.map (fun it -> it.Serve.Batcher.payload) items

let test_batcher_flush_on_max_batch () =
  let b = Serve.Batcher.create (bcfg ()) in
  check "admit 1" true (Serve.Batcher.admit b ~now:0.0 "a" = Serve.Batcher.Admitted);
  check "admit 2" true (Serve.Batcher.admit b ~now:0.0 "b" = Serve.Batcher.Admitted);
  check "under max_batch and max_wait: no flush" true
    (Serve.Batcher.take_batch b ~now:0.001 = []);
  ignore (Serve.Batcher.admit b ~now:0.001 "c");
  Alcotest.(check (list string))
    "max_batch reached: flush in FIFO order, immediately" [ "a"; "b"; "c" ]
    (payloads (Serve.Batcher.take_batch b ~now:0.001));
  check_int "queue drained" 0 (Serve.Batcher.length b)

let test_batcher_flush_on_timeout () =
  let b = Serve.Batcher.create (bcfg ()) in
  ignore (Serve.Batcher.admit b ~now:0.0 "a");
  check "before max_wait: hold" true (Serve.Batcher.take_batch b ~now:0.009 = []);
  Alcotest.(check (list string))
    "oldest waited max_wait: flush the singleton" [ "a" ]
    (payloads (Serve.Batcher.take_batch b ~now:0.010))

let test_batcher_caps_batch () =
  let b = Serve.Batcher.create (bcfg ~max_queue:10 ~max_batch:3 ()) in
  List.iter (fun p -> ignore (Serve.Batcher.admit b ~now:0.0 p))
    [ "a"; "b"; "c"; "d"; "e" ];
  Alcotest.(check (list string))
    "first flush takes the oldest max_batch" [ "a"; "b"; "c" ]
    (payloads (Serve.Batcher.take_batch b ~now:0.0));
  Alcotest.(check (list string))
    "remainder flushes next (their head is old enough)" [ "d"; "e" ]
    (payloads (Serve.Batcher.take_batch b ~now:0.010))

let test_batcher_shed_on_full () =
  let b = Serve.Batcher.create (bcfg ~max_queue:2 ()) in
  check "1 fits" true (Serve.Batcher.admit b ~now:0.0 "a" = Serve.Batcher.Admitted);
  check "2 fits" true (Serve.Batcher.admit b ~now:0.0 "b" = Serve.Batcher.Admitted);
  check "3 shed" true (Serve.Batcher.admit b ~now:0.0 "c" = Serve.Batcher.Shed);
  check_int "admitted counter" 2 (Serve.Batcher.admitted_total b);
  check_int "shed counter" 1 (Serve.Batcher.shed_total b);
  ignore (Serve.Batcher.take_batch ~force:true b ~now:0.0);
  check "after drain there is room again" true
    (Serve.Batcher.admit b ~now:0.0 "d" = Serve.Batcher.Admitted)

let test_batcher_deadlines () =
  let b = Serve.Batcher.create (bcfg ()) in
  ignore (Serve.Batcher.admit b ~now:0.0 ~deadline_ms:5 "urgent");
  ignore (Serve.Batcher.admit b ~now:0.0 "patient");
  check "nothing expired yet" true (Serve.Batcher.pop_expired b ~now:0.004 = []);
  Alcotest.(check (list string))
    "deadline passed while queued" [ "urgent" ]
    (payloads (Serve.Batcher.pop_expired b ~now:0.005));
  check_int "expired counter" 1 (Serve.Batcher.expired_total b);
  Alcotest.(check (list string))
    "expired item is gone from subsequent batches" [ "patient" ]
    (payloads (Serve.Batcher.take_batch ~force:true b ~now:0.005));
  (* a zero deadline is admitted already expired *)
  ignore (Serve.Batcher.admit b ~now:1.0 ~deadline_ms:0 "dead-on-arrival");
  Alcotest.(check (list string))
    "deadline_ms=0 expires at its own admission time" [ "dead-on-arrival" ]
    (payloads (Serve.Batcher.pop_expired b ~now:1.0))

let test_batcher_next_event () =
  let b = Serve.Batcher.create (bcfg ()) in
  check "empty queue: no event" true (Serve.Batcher.next_deadline_in b ~now:0.0 = None);
  ignore (Serve.Batcher.admit b ~now:0.0 "a");
  Alcotest.(check (option (float 1e-9)))
    "flush timer is the next event" (Some 0.010)
    (Serve.Batcher.next_deadline_in b ~now:0.0);
  check "no deadlines: no expiry event" true
    (Serve.Batcher.next_expiry_in b ~now:0.0 = None);
  ignore (Serve.Batcher.admit b ~now:0.0 ~deadline_ms:4 "b");
  Alcotest.(check (option (float 1e-9)))
    "a sooner deadline preempts the flush timer" (Some 0.004)
    (Serve.Batcher.next_deadline_in b ~now:0.0);
  Alcotest.(check (option (float 1e-9)))
    "expiry event tracks only deadlines" (Some 0.004)
    (Serve.Batcher.next_expiry_in b ~now:0.0);
  Alcotest.(check (option (float 1e-9)))
    "events in the past clamp to zero" (Some 0.0)
    (Serve.Batcher.next_deadline_in b ~now:1.0)

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  let m = Serve.Metrics.create () in
  check_int "unbumped counter reads 0" 0 (Serve.Metrics.counter m "x");
  Serve.Metrics.incr m "x";
  Serve.Metrics.incr m "x" ~by:4;
  check_int "incr accumulates" 5 (Serve.Metrics.counter m "x")

let test_metrics_histogram () =
  let m = Serve.Metrics.create () in
  check "empty histogram has no quantile" true
    (Serve.Metrics.quantile m "lat" 0.5 = None);
  List.iter (Serve.Metrics.observe m "lat") [ 0.001; 0.001; 0.001; 0.1 ];
  check_int "count" 4 (Serve.Metrics.hist_count m "lat");
  Alcotest.(check (float 1e-9)) "sum" 0.103 (Serve.Metrics.hist_sum m "lat");
  (match Serve.Metrics.quantile m "lat" 0.5 with
  | Some q -> check "p50 upper bound is near the mode" true (q >= 0.001 && q < 0.005)
  | None -> Alcotest.fail "p50 missing");
  match Serve.Metrics.quantile m "lat" 1.0 with
  | Some q -> check "p100 covers the largest observation" true (q >= 0.1)
  | None -> Alcotest.fail "p100 missing"

let test_metrics_render () =
  let m = Serve.Metrics.create () in
  Serve.Metrics.incr m "serve_requests_total" ~by:7;
  Serve.Metrics.observe m "serve_latency_seconds" 0.002;
  let text = Serve.Metrics.render m in
  let has needle = Astring_contains.contains text needle in
  check "counter TYPE line" true (has "# TYPE serve_requests_total counter");
  check "counter value" true (has "serve_requests_total 7");
  check "histogram TYPE line" true (has "# TYPE serve_latency_seconds histogram");
  check "cumulative +Inf bucket" true
    (has "serve_latency_seconds_bucket{le=\"+Inf\"} 1");
  check "histogram count" true (has "serve_latency_seconds_count 1");
  let stats = Serve.Metrics.stats_line m in
  check "stats line carries counters" true
    (Astring_contains.contains stats "serve_requests_total=7")

(* ------------------------------------------------------------------ *)
(* raise_nest                                                         *)
(* ------------------------------------------------------------------ *)

let test_raise_nest_roundtrip () =
  List.iter
    (fun spec ->
      let op =
        match Op_spec.parse spec with
        | Ok op -> op
        | Error e -> Alcotest.failf "%s: %s" spec e
      in
      let nest = Lower.to_loop_nest op in
      match Lower.raise_nest nest with
      | Error e -> Alcotest.failf "%s: raise failed: %s" spec e
      | Ok op' ->
          check_str
            (spec ^ ": lower(raise(lower(op))) = lower(op)")
            (Ir_printer.to_string nest)
            (Ir_printer.to_string (Lower.to_loop_nest op')))
    [
      "matmul:16x16x16";
      "conv2d:8x8x4,k3,f8,s1";
      "maxpool:8x8x4,k2,s2";
      "add:16x16";
      "relu:32x8";
    ]

let read_nest file =
  let ic = open_in (Filename.concat "../examples/nests" file) in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Ir_parser.parse_result text with
  | Ok nest -> nest
  | Error e -> Alcotest.failf "%s: parse error: %s" file e

let test_raise_nest_examples () =
  List.iter
    (fun file ->
      match Lower.raise_nest (read_nest file) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s should raise cleanly: %s" file e)
    [ "matmul.nest"; "conv2d.nest"; "relu.nest" ];
  List.iter
    (fun file ->
      match Lower.raise_nest (read_nest file) with
      | Ok _ -> Alcotest.failf "%s should be rejected" file
      | Error _ -> ())
    [ "stencil1d.nest"; "skewed2d.nest" ]

(* ------------------------------------------------------------------ *)
(* act_greedy_batch                                                   *)
(* ------------------------------------------------------------------ *)

let test_act_greedy_batch_matches_scalar () =
  let cfg = Env_config.default in
  let policy = Policy.create ~hidden:32 ~backbone_layers:2 (Util.Rng.create 7) cfg in
  let envs =
    Array.map
      (fun op ->
        let env = Env.create cfg in
        let obs = Env.reset env op in
        (env, ref obs, ref true))
      [|
        Linalg.matmul ~m:16 ~n:16 ~k:16 ();
        Linalg.matmul ~m:32 ~n:8 ~k:8 ();
        Linalg.relu [| 16; 16 |];
      |]
  in
  (* Walk the episodes in lockstep (exactly the engine's loop shape),
     comparing the batched argmax row against the singleton call at
     every live state. *)
  let compared = ref 0 in
  for _step = 0 to 3 do
    let live =
      Array.of_list
        (List.filter (fun (_, _, alive) -> !alive) (Array.to_list envs))
    in
    if Array.length live > 0 then begin
      let obs = Array.map (fun (_, o, _) -> !o) live in
      let masks = Array.map (fun (e, _, _) -> Env.masks e) live in
      let batched = Policy.act_greedy_batch policy ~obs ~masks in
      Array.iteri
        (fun i (env, obs_ref, alive) ->
          let single = Policy.act_greedy policy ~obs:!obs_ref ~masks:masks.(i) in
          check "batched row = singleton act_greedy" true (batched.(i) = single);
          incr compared;
          let r = Env.step_hierarchical env batched.(i) in
          obs_ref := r.Env.obs;
          if r.Env.terminal then alive := false)
        live
    end
  done;
  check "compared at least one full batch" true (!compared >= 3)

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let mk_engine ?(cache_capacity = 256) () =
  match
    Serve.Engine.create
      { Serve.Engine.default_config with Serve.Engine.hidden = 32; cache_capacity }
  with
  | Ok e -> e
  | Error e -> Alcotest.failf "engine create failed: %s" e

let test_engine_resolve () =
  let e = mk_engine () in
  (match Serve.Engine.resolve_target e (Serve.Protocol.Spec "matmul:8x8x8") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "valid spec rejected");
  (match Serve.Engine.resolve_target e (Serve.Protocol.Spec "matmul:8x8") with
  | Error (Serve.Protocol.Parse_error, _) -> ()
  | _ -> Alcotest.fail "bad spec should be Parse_error");
  (match Serve.Engine.resolve_target e (Serve.Protocol.Ir "func nonsense") with
  | Error (Serve.Protocol.Parse_error, _) -> ()
  | _ -> Alcotest.fail "bad IR should be Parse_error");
  (* valid IR that cannot be raised: stencil accumulator *)
  let stencil =
    let ic = open_in "../examples/nests/stencil1d.nest" in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text
  in
  (match Serve.Engine.resolve_target e (Serve.Protocol.Ir stencil) with
  | Error (Serve.Protocol.Unsupported, _) -> ()
  | _ -> Alcotest.fail "stencil IR should be Unsupported");
  (* parses and raises cleanly, but its 8 loops exceed the policy's
     N=7 bound (Op_spec cannot express this; raw IR can) *)
  let deep =
    let b = Buffer.create 256 in
    Buffer.add_string b "func @deep_copy {\n";
    Buffer.add_string b
      (Printf.sprintf "  buffer in0 : [%s]\n"
         (String.concat ", " (List.init 8 (fun _ -> "2"))));
    Buffer.add_string b
      (Printf.sprintf "  buffer out : [%s]\n"
         (String.concat ", " (List.init 8 (fun _ -> "2"))));
    for i = 0 to 7 do
      Buffer.add_string b (Printf.sprintf "  for %%%d = 0 to 2 origin %d {\n" i i)
    done;
    let idx = String.concat ", " (List.init 8 (Printf.sprintf "%%%d")) in
    Buffer.add_string b
      (Printf.sprintf "  store out[%s] = load in0[%s]\n" idx idx);
    for _ = 0 to 7 do
      Buffer.add_string b "  }\n"
    done;
    Buffer.add_string b "}\n";
    Buffer.contents b
  in
  match Serve.Engine.resolve_target e (Serve.Protocol.Ir deep) with
  | Error (Serve.Protocol.Unsupported, msg) ->
      check "bound violation names the loop budget" true
        (Astring_contains.contains msg "loops")
  | _ -> Alcotest.fail "8-loop nest should be Unsupported"

let test_engine_cache_and_determinism () =
  let e = mk_engine () in
  let op = function
    | Ok op -> op
    | Error _ -> Alcotest.fail "spec"
  in
  let a = op (Op_spec.parse "matmul:16x16x16") in
  let b = op (Op_spec.parse "relu:32x8") in
  (* batch with an internal duplicate *)
  let r1 = Serve.Engine.solve_batch e [| a; b; a |] in
  check_int "no hits on a cold cache" 0 (Serve.Engine.cache_hits e);
  let outcome = function
    | Ok (o : Serve.Engine.outcome) -> (o.Serve.Engine.schedule, o.Serve.Engine.speedup)
    | Error (_, m) -> Alcotest.failf "solve failed: %s" m
  in
  check "duplicate rows in one batch agree" true (outcome r1.(0) = outcome r1.(2));
  (* same ops again: all hits, same answers *)
  let r2 = Serve.Engine.solve_batch e [| a; b |] in
  check "cache hits recorded" true (Serve.Engine.cache_hits e >= 2);
  check "cached answer = computed answer (a)" true (outcome r1.(0) = outcome r2.(0));
  check "cached answer = computed answer (b)" true (outcome r1.(1) = outcome r2.(1));
  (* batch-independence: a fresh engine solving singletons agrees *)
  let e' = mk_engine () in
  let s1 = Serve.Engine.solve_batch e' [| a |] in
  let s2 = Serve.Engine.solve_batch e' [| b |] in
  check "singleton = batched (a)" true (outcome s1.(0) = outcome r1.(0));
  check "singleton = batched (b)" true (outcome s2.(0) = outcome r1.(1));
  check "policy digest is stable across engines" true
    (String.equal (Serve.Engine.policy_digest e) (Serve.Engine.policy_digest e'))

(* ------------------------------------------------------------------ *)
(* Server (in-process, no sockets)                                    *)
(* ------------------------------------------------------------------ *)

let sync_submit server req =
  let m = Mutex.create () in
  let c = Condition.create () in
  let slot = ref None in
  Serve.Server.submit server req (fun resp ->
      Mutex.lock m;
      slot := Some resp;
      Condition.broadcast c;
      Mutex.unlock m);
  Mutex.lock m;
  while !slot = None do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Option.get !slot

let mk_server ?(workers = 1) ?(max_queue = 16) ?(max_batch = 4)
    ?(max_wait_s = 0.0) () =
  let engine = mk_engine () in
  ( Serve.Server.create
      ~config:
        {
          Serve.Server.workers;
          batcher = { Serve.Batcher.max_queue; max_batch; max_wait_s };
        }
      engine,
    engine )

let optimize ?deadline_ms id spec =
  Serve.Protocol.Optimize
    { id; target = Serve.Protocol.Spec spec; deadline_ms }

let test_server_byte_identical_replies () =
  let server, engine = mk_server () in
  Fun.protect
    ~finally:(fun () -> Serve.Server.drain server)
    (fun () ->
      let req = optimize "r1" "matmul:16x16x16" in
      (* First answer computes; the second must hit the cache. The wire
         lines must be byte-identical — the reply deliberately carries
         no cache marker. *)
      let l1 = Serve.Protocol.encode_response (sync_submit server req) in
      let l2 = Serve.Protocol.encode_response (sync_submit server req) in
      check_str "identical requests get byte-identical reply lines" l1 l2;
      check "second answer came from the cache" true
        (Serve.Engine.cache_hits engine >= 1);
      (match Serve.Protocol.decode_response l1 with
      | Ok (Serve.Protocol.Ok_reply r) ->
          check "reply carries the policy digest" true
            (String.equal r.Serve.Protocol.policy_digest
               (Serve.Engine.policy_digest engine));
          check "reply schedule parses" true
            (Result.is_ok (Schedule.of_string r.Serve.Protocol.schedule))
      | _ -> Alcotest.fail "expected an ok reply"))

let test_server_typed_errors () =
  let server, _ = mk_server () in
  Fun.protect
    ~finally:(fun () -> Serve.Server.drain server)
    (fun () ->
      (match sync_submit server (optimize "e1" "matmul:oops") with
      | Serve.Protocol.Error_reply { code = Serve.Protocol.Parse_error; _ } -> ()
      | _ -> Alcotest.fail "bad spec should answer parse_error");
      (match sync_submit server (optimize ~deadline_ms:0 "e2" "matmul:8x8x8") with
      | Serve.Protocol.Error_reply { code = Serve.Protocol.Deadline_exceeded; _ }
        -> ()
      | _ -> Alcotest.fail "0ms deadline should answer deadline_exceeded");
      (match sync_submit server (Serve.Protocol.Ping { id = "p" }) with
      | Serve.Protocol.Pong { p_id = "p" } -> ()
      | _ -> Alcotest.fail "ping should pong");
      (match sync_submit server (Serve.Protocol.Stats { id = "s" }) with
      | Serve.Protocol.Stats_reply { body; _ } ->
          check "stats body mentions the queue" true
            (Astring_contains.contains body "queue=")
      | _ -> Alcotest.fail "stats should answer stats");
      match sync_submit server (Serve.Protocol.Metrics { id = "m" }) with
      | Serve.Protocol.Metrics_reply { body; _ } ->
          check "metrics body is a Prometheus dump" true
            (Astring_contains.contains body "# TYPE serve_requests_total")
      | _ -> Alcotest.fail "metrics should answer metrics")

let test_server_sheds_when_full () =
  (* workers=1, a queue of 2 and a far-off flush (max_batch and
     max_wait both unreachable in this test's lifetime) make shedding
     deterministic: two requests sit in the queue, the third bounces. *)
  let server, _ =
    mk_server ~workers:1 ~max_queue:2 ~max_batch:64 ~max_wait_s:10.0 ()
  in
  let got = ref [] in
  let m = Mutex.create () in
  let record resp =
    Mutex.lock m;
    got := resp :: !got;
    Mutex.unlock m
  in
  Serve.Server.submit server (optimize "q1" "matmul:16x16x16") record;
  Serve.Server.submit server (optimize "q2" "relu:32x8") record;
  let shed_reply = sync_submit server (optimize "q3" "add:16x16") in
  (match shed_reply with
  | Serve.Protocol.Error_reply { e_id = "q3"; code = Serve.Protocol.Overloaded; _ }
    -> ()
  | _ -> Alcotest.fail "third request should be shed as overloaded");
  (* drain must serve the two queued requests, not drop them *)
  Serve.Server.drain server;
  let ok_ids =
    List.filter_map
      (function Serve.Protocol.Ok_reply r -> Some r.Serve.Protocol.r_id | _ -> None)
      !got
  in
  Alcotest.(check (list string))
    "drain served everything admitted" [ "q1"; "q2" ] (List.sort compare ok_ids)

let test_server_drain_idempotent () =
  let server, _ = mk_server () in
  ignore (sync_submit server (optimize "r" "matmul:8x8x8"));
  Serve.Server.drain server;
  (* a second drain returns immediately; a concurrent pair both return *)
  Serve.Server.drain server;
  let d1 = Domain.spawn (fun () -> Serve.Server.drain server) in
  let d2 = Domain.spawn (fun () -> Serve.Server.drain server) in
  Domain.join d1;
  Domain.join d2;
  match sync_submit server (optimize "late" "matmul:8x8x8") with
  | Serve.Protocol.Error_reply { code = Serve.Protocol.Shutting_down; _ } -> ()
  | _ -> Alcotest.fail "post-drain optimize should answer shutting_down"

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_escape_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_decode_never_raises;
    Alcotest.test_case "malformed lines decode to typed errors" `Quick
      test_protocol_malformed;
    Alcotest.test_case "batcher flushes on max_batch" `Quick
      test_batcher_flush_on_max_batch;
    Alcotest.test_case "batcher flushes on timeout" `Quick
      test_batcher_flush_on_timeout;
    Alcotest.test_case "batcher caps batch size, keeps FIFO order" `Quick
      test_batcher_caps_batch;
    Alcotest.test_case "batcher sheds when full" `Quick test_batcher_shed_on_full;
    Alcotest.test_case "batcher expires deadlines" `Quick test_batcher_deadlines;
    Alcotest.test_case "batcher next-event computation" `Quick
      test_batcher_next_event;
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics histogram quantiles" `Quick
      test_metrics_histogram;
    Alcotest.test_case "metrics Prometheus rendering" `Quick test_metrics_render;
    Alcotest.test_case "raise_nest round-trips structured ops" `Quick
      test_raise_nest_roundtrip;
    Alcotest.test_case "raise_nest on the example nests" `Quick
      test_raise_nest_examples;
    Alcotest.test_case "act_greedy_batch rows = singleton act_greedy" `Quick
      test_act_greedy_batch_matches_scalar;
    Alcotest.test_case "engine target resolution" `Quick test_engine_resolve;
    Alcotest.test_case "engine cache + batch-independent determinism" `Quick
      test_engine_cache_and_determinism;
    Alcotest.test_case "server: identical requests, byte-identical replies"
      `Quick test_server_byte_identical_replies;
    Alcotest.test_case "server: typed error and info replies" `Quick
      test_server_typed_errors;
    Alcotest.test_case "server sheds deterministically when full" `Quick
      test_server_sheds_when_full;
    Alcotest.test_case "server drain is idempotent and concurrent-safe" `Quick
      test_server_drain_idempotent;
  ]
