(* The exhaustive baseline auto-scheduler (paper §5.1.4). *)

let ev () = Evaluator.create ()

let test_candidates_respect_constraints () =
  let config = Auto_scheduler.default_config in
  let op = Test_helpers.small_matmul () in
  let count = ref 0 in
  Seq.iter
    (fun sched ->
      incr count;
      let tiled_loops = ref 0 in
      List.iter
        (fun tr ->
          match tr with
          | Schedule.Tile sizes | Schedule.Parallelize sizes ->
              Array.iter
                (fun s ->
                  if s > 0 then begin
                    incr tiled_loops;
                    Alcotest.(check bool) "size <= 64" true (s <= 64)
                  end)
                sizes
          | Schedule.Swap _ | Schedule.Interchange _ | Schedule.Im2col
          | Schedule.Vectorize | Schedule.Unroll _ ->
              ())
        sched;
      (match List.rev sched with
      | Schedule.Vectorize :: _ -> ()
      | _ -> Alcotest.fail "schedule must end with vectorize");
      if List.length sched > 1 then
        Alcotest.(check bool) "at least two tiled loops" true (!tiled_loops >= 2))
    (Auto_scheduler.candidates config op);
  Alcotest.(check bool) "nonempty stream" true (!count > 1)

let test_candidates_apply_cleanly () =
  let config = Auto_scheduler.default_config in
  let op = Test_helpers.small_conv () in
  Seq.iter
    (fun sched ->
      match Sched_state.apply_all op sched with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "candidate %s failed: %s" (Schedule.to_string sched) e)
    (Seq.take 500 (Auto_scheduler.candidates config op))

let test_search_improves_over_trivial () =
  let e = ev () in
  let op = Linalg.matmul ~m:256 ~n:256 ~k:256 () in
  let r = Auto_scheduler.search e op in
  let trivial =
    Result.get_ok (Evaluator.schedule_speedup e op [ Schedule.Vectorize ])
  in
  Alcotest.(check bool) "beats vectorize-only" true
    (r.Auto_scheduler.best_speedup > trivial);
  Alcotest.(check bool) "best schedule evaluates to best speedup" true
    (Float.abs
       (Result.get_ok (Evaluator.schedule_speedup e op r.Auto_scheduler.best_schedule)
       -. r.Auto_scheduler.best_speedup)
    < 1e-9)

let test_search_respects_budget () =
  let config = { Auto_scheduler.default_config with Auto_scheduler.max_schedules = 50 } in
  let r = Auto_scheduler.search ~config (ev ()) (Linalg.matmul ~m:256 ~n:256 ~k:256 ()) in
  Alcotest.(check bool) "within budget" true (r.Auto_scheduler.explored <= 50)

let test_trace_monotone () =
  let r = Auto_scheduler.search (ev ()) (Linalg.matmul ~m:128 ~n:128 ~k:128 ()) in
  let best = ref 0.0 in
  Array.iter
    (fun (i, sp) ->
      Alcotest.(check bool) "index positive" true (i > 0);
      Alcotest.(check bool) "monotone" true (sp >= !best);
      best := sp)
    r.Auto_scheduler.trace;
  Alcotest.(check int) "one point per evaluation" r.Auto_scheduler.explored
    (Array.length r.Auto_scheduler.trace)

let test_search_deterministic () =
  let op = Linalg.matmul ~m:512 ~n:512 ~k:512 () in
  let r1 = Auto_scheduler.search (ev ()) op in
  let r2 = Auto_scheduler.search (ev ()) op in
  Alcotest.(check (float 1e-12)) "same best" r1.Auto_scheduler.best_speedup
    r2.Auto_scheduler.best_speedup

let test_search_uses_im2col_for_conv () =
  (* The conv candidate stream must include im2col variants. *)
  let config = Auto_scheduler.default_config in
  let op = Test_helpers.small_conv () in
  let has_im2col =
    Seq.exists (fun sched -> List.mem Schedule.Im2col sched)
      (Auto_scheduler.candidates config op)
  in
  Alcotest.(check bool) "im2col present" true has_im2col

let test_search_never_parallelizes_reductions () =
  let config = Auto_scheduler.default_config in
  let op = Test_helpers.small_matmul () in
  Seq.iter
    (fun sched ->
      List.iter
        (function
          | Schedule.Parallelize sizes ->
              Alcotest.(check int) "reduction dim (k) untouched" 0 sizes.(2)
          | _ -> ())
        sched)
    (Auto_scheduler.candidates config op)

let test_elementwise_search () =
  let r = Auto_scheduler.search (ev ()) (Linalg.add [| 512; 512 |]) in
  Alcotest.(check bool) "finds something" true (r.Auto_scheduler.best_speedup > 1.0)

let test_maxpool_search () =
  let op =
    Linalg.maxpool
      { Linalg.p_batch = 1; p_in_h = 56; p_in_w = 56; p_channels = 64;
        p_kernel = 2; p_stride = 2 }
  in
  let r = Auto_scheduler.search (ev ()) op in
  Alcotest.(check bool) "pooling improves moderately" true
    (r.Auto_scheduler.best_speedup > 1.0)

let suite =
  [
    Alcotest.test_case "candidates respect constraints" `Quick
      test_candidates_respect_constraints;
    Alcotest.test_case "candidates apply cleanly" `Quick test_candidates_apply_cleanly;
    Alcotest.test_case "search improves over trivial" `Quick
      test_search_improves_over_trivial;
    Alcotest.test_case "search respects budget" `Quick test_search_respects_budget;
    Alcotest.test_case "trace monotone" `Quick test_trace_monotone;
    Alcotest.test_case "search deterministic" `Quick test_search_deterministic;
    Alcotest.test_case "conv stream has im2col" `Quick test_search_uses_im2col_for_conv;
    Alcotest.test_case "no parallel reductions" `Quick
      test_search_never_parallelizes_reductions;
    Alcotest.test_case "elementwise search" `Quick test_elementwise_search;
    Alcotest.test_case "maxpool search" `Quick test_maxpool_search;
  ]
