(* TF comparators and the Table 2 dataset generator. *)

let ev () = Evaluator.create ()

(* --- baselines --- *)

let test_expert_schedule_valid () =
  let e = ev () in
  List.iter
    (fun op ->
      let sched, speedup = Tf_baseline.expert_schedule e op in
      Alcotest.(check bool)
        (Linalg.kind_name op ^ " expert applies")
        true
        (Result.is_ok (Sched_state.apply_all op sched));
      Alcotest.(check bool) "positive speedup" true (speedup > 0.0))
    [
      Linalg.matmul ~m:256 ~n:256 ~k:256 ();
      Test_helpers.small_conv ();
      Test_helpers.small_maxpool ();
      Linalg.add [| 256; 256 |];
      Linalg.relu [| 256; 256 |];
    ]

let test_tf_factors_match_calibration () =
  Alcotest.(check (float 1e-9)) "matmul" 7.55
    (Tf_baseline.tf_factor (Linalg.matmul ~m:2 ~n:2 ~k:2 ()));
  Alcotest.(check (float 1e-9)) "maxpool" 0.24
    (Tf_baseline.tf_factor (Test_helpers.small_maxpool ()));
  Alcotest.(check (float 1e-9)) "add" 1.05 (Tf_baseline.tf_factor (Linalg.add [| 2 |]));
  Alcotest.(check (float 1e-9)) "relu" 1.68 (Tf_baseline.tf_factor (Linalg.relu [| 2 |]));
  Alcotest.(check (float 1e-9)) "conv" 1.16
    (Tf_baseline.tf_factor (Test_helpers.small_conv ()))

let test_tf_jit_improves_elementwise () =
  let op = Linalg.relu [| 512; 512 |] in
  let e = ev () in
  Alcotest.(check bool) "jit faster than tf on relu" true
    (Tf_baseline.tf_jit_seconds e op < Tf_baseline.tf_seconds e op)

let test_tf_beats_everything_on_pooling () =
  (* The calibrated factor makes TF's fused pooling kernel ~4x faster
     than the best schedule estimate. *)
  let op =
    Linalg.maxpool
      { Linalg.p_batch = 1; p_in_h = 56; p_in_w = 56; p_channels = 64;
        p_kernel = 2; p_stride = 2 }
  in
  let e = ev () in
  let best = Auto_scheduler.search e op in
  let best_seconds =
    Evaluator.base_seconds e op /. best.Auto_scheduler.best_speedup
  in
  Alcotest.(check bool) "tf faster on pooling" true
    (Tf_baseline.tf_seconds e op < best_seconds)

let test_tf_times_deterministic () =
  let op = Linalg.matmul ~m:128 ~n:128 ~k:256 () in
  let e = ev () in
  Alcotest.(check (float 1e-15)) "stable" (Tf_baseline.tf_seconds e op)
    (Tf_baseline.tf_seconds e op)

(* --- dataset --- *)

let test_table2_counts () =
  let split = Generator.generate ~seed:7 () in
  Alcotest.(check int) "1088 train" 1088 (Array.length split.Generator.train);
  Alcotest.(check int) "67 validation" 67 (Array.length split.Generator.validation);
  Alcotest.(check (list (pair string int)))
    "validation histogram matches Table 2"
    [ ("add", 10); ("conv2d", 18); ("matmul", 15); ("maxpool", 10); ("relu", 14) ]
    (Generator.kind_counts split.Generator.validation);
  Alcotest.(check (list (pair string int)))
    "train histogram matches Table 2"
    [ ("add", 248); ("conv2d", 232); ("matmul", 175); ("maxpool", 200); ("relu", 233) ]
    (Generator.kind_counts split.Generator.train)

let test_dataset_deterministic () =
  let a = Generator.generate ~seed:11 () in
  let b = Generator.generate ~seed:11 () in
  Alcotest.(check bool) "same names" true
    (Array.for_all2
       (fun (x : Linalg.t) (y : Linalg.t) -> x.Linalg.op_name = y.Linalg.op_name)
       a.Generator.train b.Generator.train)

let test_dataset_seed_changes () =
  let a = Generator.generate ~seed:11 () in
  let b = Generator.generate ~seed:12 () in
  Alcotest.(check bool) "different shapes somewhere" true
    (Array.exists2
       (fun (x : Linalg.t) (y : Linalg.t) -> x.Linalg.domain <> y.Linalg.domain)
       a.Generator.train b.Generator.train)

let test_dataset_ops_fit_env () =
  (* Every generated op must fit the environment's N/L/D bounds. *)
  let split = Generator.generate ~seed:5 () in
  let cfg = Env_config.default in
  Array.iter
    (fun op ->
      let st = Sched_state.init op in
      let obs = Observation.extract cfg st in
      Alcotest.(check int)
        (op.Linalg.op_name ^ " obs length")
        (Env_config.obs_dim cfg) (Array.length obs))
    (Array.append split.Generator.train split.Generator.validation)

let test_dataset_ops_validate () =
  let split = Generator.generate ~seed:13 () in
  Array.iter
    (fun op ->
      match Linalg.validate op with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" op.Linalg.op_name e)
    split.Generator.validation

let test_dataset_unique_names () =
  let split = Generator.generate ~seed:3 () in
  let module S = Set.Make (String) in
  let names =
    S.of_list
      (Array.to_list
         (Array.map (fun (o : Linalg.t) -> o.Linalg.op_name)
            (Array.append split.Generator.train split.Generator.validation)))
  in
  Alcotest.(check int) "all distinct" (1088 + 67) (S.cardinal names)

let test_random_op_unknown_kind () =
  let rng = Util.Rng.create 1 in
  Alcotest.(check bool) "raises" true
    (match Generator.random_op rng "softmax" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "expert schedules valid" `Quick test_expert_schedule_valid;
    Alcotest.test_case "tf factors calibration" `Quick test_tf_factors_match_calibration;
    Alcotest.test_case "jit improves elementwise" `Quick test_tf_jit_improves_elementwise;
    Alcotest.test_case "tf wins pooling" `Quick test_tf_beats_everything_on_pooling;
    Alcotest.test_case "tf deterministic" `Quick test_tf_times_deterministic;
    Alcotest.test_case "table 2 counts" `Quick test_table2_counts;
    Alcotest.test_case "dataset deterministic" `Quick test_dataset_deterministic;
    Alcotest.test_case "dataset seed changes" `Quick test_dataset_seed_changes;
    Alcotest.test_case "dataset fits env" `Quick test_dataset_ops_fit_env;
    Alcotest.test_case "dataset ops validate" `Quick test_dataset_ops_validate;
    Alcotest.test_case "dataset unique names" `Quick test_dataset_unique_names;
    Alcotest.test_case "unknown kind rejected" `Quick test_random_op_unknown_kind;
  ]
