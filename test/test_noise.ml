(* Measurement noise in the evaluator. *)

let op () = Linalg.matmul ~m:128 ~n:128 ~k:128 ()

let test_noiseless_is_deterministic () =
  let ev = Evaluator.create () in
  let st = Result.get_ok (Sched_state.apply_all (op ()) [ Schedule.Vectorize ]) in
  let a = Evaluator.state_seconds ev st in
  let b = Evaluator.state_seconds ev st in
  Alcotest.(check (float 1e-15)) "no jitter" a b

let test_noise_jitters_measurements () =
  let ev = Evaluator.create ~noise:0.1 ~noise_seed:3 () in
  let st = Result.get_ok (Sched_state.apply_all (op ()) [ Schedule.Vectorize ]) in
  let a = Evaluator.state_seconds ev st in
  let b = Evaluator.state_seconds ev st in
  Alcotest.(check bool) "measurements differ" true (Float.abs (a -. b) > 0.0)

let test_noise_seed_reproducible () =
  let run () =
    let ev = Evaluator.create ~noise:0.1 ~noise_seed:7 () in
    let st = Result.get_ok (Sched_state.apply_all (op ()) [ Schedule.Vectorize ]) in
    List.init 5 (fun _ -> Evaluator.state_seconds ev st)
  in
  List.iter2
    (fun a b -> Alcotest.(check (float 1e-15)) "same stream" a b)
    (run ()) (run ())

let test_noise_unbiased_in_log () =
  (* Log-normal jitter: the mean of log measurements matches the
     noiseless log time. *)
  let clean = Evaluator.create () in
  let noisy = Evaluator.create ~noise:0.1 ~noise_seed:5 () in
  let st = Result.get_ok (Sched_state.apply_all (op ()) [ Schedule.Vectorize ]) in
  let truth = log (Evaluator.state_seconds clean st) in
  let n = 2000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. log (Evaluator.state_seconds noisy st)
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "log-mean %.4f vs %.4f" mean truth)
    true
    (Float.abs (mean -. truth) < 0.02)

let test_base_times_stay_clean () =
  let noisy = Evaluator.create ~noise:0.5 ~noise_seed:5 () in
  let o = op () in
  let a = Evaluator.base_seconds noisy o in
  let b = Evaluator.base_seconds noisy o in
  Alcotest.(check (float 1e-15)) "base cached and clean" a b

let suite =
  [
    Alcotest.test_case "noiseless deterministic" `Quick test_noiseless_is_deterministic;
    Alcotest.test_case "noise jitters" `Quick test_noise_jitters_measurements;
    Alcotest.test_case "noise seed reproducible" `Quick test_noise_seed_reproducible;
    Alcotest.test_case "noise unbiased in log" `Quick test_noise_unbiased_in_log;
    Alcotest.test_case "base times clean" `Quick test_base_times_stay_clean;
  ]
