(* Weight persistence. *)

let temp_file () = Filename.temp_file "mlir_rl_test" ".params"

let test_roundtrip_params () =
  let rng = Util.Rng.create 1 in
  let mlp = Layers.mlp rng ~dims:[ 3; 5; 2 ] "m" in
  let params = Layers.mlp_params mlp in
  let path = temp_file () in
  Serialize.save_params path params;
  let rng2 = Util.Rng.create 99 in
  let mlp2 = Layers.mlp rng2 ~dims:[ 3; 5; 2 ] "m" in
  let params2 = Layers.mlp_params mlp2 in
  Alcotest.(check bool) "initially different" false
    (Serialize.params_equal params params2);
  (match Serialize.load_params path params2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "identical after load" true
    (Serialize.params_equal params params2);
  Sys.remove path

let test_load_rejects_shape_mismatch () =
  let rng = Util.Rng.create 1 in
  let a = Layers.mlp_params (Layers.mlp rng ~dims:[ 3; 5; 2 ] "m") in
  let b = Layers.mlp_params (Layers.mlp rng ~dims:[ 3; 4; 2 ] "m") in
  let path = temp_file () in
  Serialize.save_params path a;
  Alcotest.(check bool) "shape mismatch rejected" true
    (Result.is_error (Serialize.load_params path b));
  Sys.remove path

let test_load_rejects_name_mismatch () =
  let rng = Util.Rng.create 1 in
  let a = Layers.mlp_params (Layers.mlp rng ~dims:[ 3; 2 ] "alpha") in
  let b = Layers.mlp_params (Layers.mlp rng ~dims:[ 3; 2 ] "beta") in
  let path = temp_file () in
  Serialize.save_params path a;
  Alcotest.(check bool) "name mismatch rejected" true
    (Result.is_error (Serialize.load_params path b));
  Sys.remove path

let test_load_rejects_garbage () =
  let path = temp_file () in
  let oc = open_out path in
  output_string oc "not a parameter file\n";
  close_out oc;
  let rng = Util.Rng.create 1 in
  let params = Layers.mlp_params (Layers.mlp rng ~dims:[ 2; 2 ] "m") in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Serialize.load_params path params));
  Sys.remove path

let test_load_missing_file () =
  let rng = Util.Rng.create 1 in
  let params = Layers.mlp_params (Layers.mlp rng ~dims:[ 2; 2 ] "m") in
  Alcotest.(check bool) "missing file" true
    (Result.is_error (Serialize.load_params "/nonexistent/file.params" params))

let test_policy_roundtrip_behaviour () =
  (* A restored policy must make the same greedy decisions. *)
  let cfg = Env_config.default in
  let rng = Util.Rng.create 7 in
  let p1 = Policy.create ~hidden:16 ~backbone_layers:1 rng cfg in
  let p2 = Policy.create ~hidden:16 ~backbone_layers:1 (Util.Rng.create 8) cfg in
  let path = temp_file () in
  Policy.save p1 path;
  (match Policy.load p2 path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let st = Sched_state.init (Test_helpers.small_matmul ()) in
  let obs = Observation.extract cfg st in
  let masks = Action_space.masks cfg st in
  let a1 = Policy.act_greedy p1 ~obs ~masks in
  let a2 = Policy.act_greedy p2 ~obs ~masks in
  Alcotest.(check bool) "same greedy action" true (a1 = a2);
  Sys.remove path

let test_exact_float_roundtrip () =
  (* %h hex floats restore bit-exactly, including awkward values. *)
  let p =
    Autodiff.Param.create "x"
      (Tensor.of_array [| 4 |] [| 1.0 /. 3.0; -0.0; 1e-300; 12345.6789 |])
  in
  let path = temp_file () in
  Serialize.save_params path [ p ];
  let q = Autodiff.Param.create "x" (Tensor.zeros [| 4 |]) in
  (match Serialize.load_params path [ q ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "bit exact" true
    (Tensor.equal p.Autodiff.Param.data q.Autodiff.Param.data);
  Sys.remove path

let test_golden_file_compat () =
  (* A checkpoint as written by the pre-Bigarray float-array
     implementation, byte for byte (the text format never changed when
     the tensor representation did). Loading it must restore the exact
     bit patterns onto Bigarray storage, and re-saving must reproduce
     the original bytes. *)
  let golden =
    "mlir-rl-params v1\n\
     2\n\
     golden.w 2 2 3\n\
     0x1.5555555555555p-2 -0x0p+0 0x0.0000000000001p-1022 infinity \
     -infinity 0x1.81cd6e631f8a1p+13\n\
     golden.b 1 2\n\
     0x1.999999999999ap-4 0x1.fffffffffffffp+1023\n"
  in
  let path = temp_file () in
  let oc = open_out_bin path in
  output_string oc golden;
  close_out oc;
  let w = Autodiff.Param.create "golden.w" (Tensor.zeros [| 2; 3 |]) in
  let b = Autodiff.Param.create "golden.b" (Tensor.zeros [| 2 |]) in
  (match Serialize.load_params path [ w; b ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "w bit exact" true
    (Tensor.equal w.Autodiff.Param.data
       (Tensor.of_array [| 2; 3 |]
          [| 1.0 /. 3.0; -0.0; 5e-324; infinity; neg_infinity; 12345.6789 |]));
  Alcotest.(check bool) "b bit exact" true
    (Tensor.equal b.Autodiff.Param.data
       (Tensor.of_array [| 2 |] [| 0.1; max_float |]));
  let path2 = temp_file () in
  Serialize.save_params path2 [ w; b ];
  let ic = open_in_bin path2 in
  let again = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "writer byte-stable" golden again;
  Sys.remove path;
  Sys.remove path2

let suite =
  [
    Alcotest.test_case "roundtrip params" `Quick test_roundtrip_params;
    Alcotest.test_case "golden file compat" `Quick test_golden_file_compat;
    Alcotest.test_case "rejects shape mismatch" `Quick test_load_rejects_shape_mismatch;
    Alcotest.test_case "rejects name mismatch" `Quick test_load_rejects_name_mismatch;
    Alcotest.test_case "rejects garbage" `Quick test_load_rejects_garbage;
    Alcotest.test_case "missing file" `Quick test_load_missing_file;
    Alcotest.test_case "policy roundtrip behaviour" `Quick
      test_policy_roundtrip_behaviour;
    Alcotest.test_case "exact float roundtrip" `Quick test_exact_float_roundtrip;
  ]
