let () =
  Alcotest.run "mlir-rl"
    [
      ("util", Test_util.suite);
      ("affine", Test_affine.suite);
      ("linalg", Test_linalg.suite);
      ("loop-nest", Test_loop_nest.suite);
      ("transforms", Test_transforms.suite);
      ("im2col", Test_im2col.suite);
      ("schedule", Test_schedule.suite);
      ("sched-state", Test_sched_state.suite);
      ("perf", Test_perf.suite);
      ("nn", Test_nn.suite);
      ("rl", Test_rl.suite);
      ("env", Test_env.suite);
      ("policy", Test_policy.suite);
      ("autosched", Test_autosched.suite);
      ("baselines+dataset", Test_baselines_dataset.suite);
      ("unroll", Test_unroll.suite);
      ("serialize", Test_serialize.suite);
      ("op-spec", Test_op_spec.suite);
      ("learned-cost", Test_learned_cost.suite);
      ("extended-ops", Test_extended_ops.suite);
      ("beam-search", Test_beam.suite);
      ("fusion", Test_fusion.suite);
      ("machines", Test_machines.suite);
      ("env-extra", Test_env_extra.suite);
      ("pipeline", Test_pipeline.suite);
      ("noise", Test_noise.suite);
      ("features", Test_features.suite);
      ("layout", Test_layout.suite);
      ("misc", Test_misc.suite);
      ("robust-eval", Test_robust_eval.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("integration", Test_integration.suite);
    ]
