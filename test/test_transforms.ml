(* Semantic-preservation and structural tests for loop transformations. *)

let check = Test_helpers.check_schedule_preserves

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (Loop_transforms.divisors 12);
  Alcotest.(check (list int)) "7" [ 1; 7 ] (Loop_transforms.divisors 7);
  Alcotest.(check bool) "rejects 0" true
    (match Loop_transforms.divisors 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_tile_preserves () = check (Test_helpers.small_matmul ()) [ Schedule.Tile [| 4; 4; 8 |] ]

let test_tile_partial_preserves () =
  check (Test_helpers.small_matmul ()) [ Schedule.Tile [| 0; 6; 0 |] ]

let test_multi_level_tiling_preserves () =
  check (Test_helpers.small_matmul ())
    [ Schedule.Tile [| 4; 0; 8 |]; Schedule.Tile [| 2; 4; 2 |] ]

let test_interchange_preserves () =
  check (Test_helpers.small_matmul ()) [ Schedule.Interchange [| 2; 0; 1 |] ]

let test_swap_preserves () = check (Test_helpers.small_matmul ()) [ Schedule.Swap 1 ]

let test_parallelize_preserves () =
  check (Test_helpers.small_matmul ()) [ Schedule.Parallelize [| 4; 4; 0 |] ]

let test_vectorize_preserves () =
  check (Test_helpers.small_matmul ()) [ Schedule.Vectorize ]

let test_full_pipeline_preserves () =
  check (Test_helpers.small_matmul ())
    [
      Schedule.Parallelize [| 4; 6; 0 |];
      Schedule.Tile [| 2; 3; 4 |];
      Schedule.Swap 0;
      Schedule.Vectorize;
    ]

let test_conv_tiling_preserves () =
  check (Test_helpers.small_conv ()) [ Schedule.Tile [| 0; 3; 2; 2; 0; 0; 0 |] ]

let test_conv_interchange_preserves () =
  check (Test_helpers.small_conv ()) [ Schedule.Swap 3; Schedule.Swap 2 ]

let test_maxpool_schedule_preserves () =
  check (Test_helpers.small_maxpool ())
    [ Schedule.Parallelize [| 0; 2; 2; 0; 0; 0 |]; Schedule.Vectorize ]

let test_tile_structure () =
  let op = Test_helpers.small_matmul () in
  let nest = Lower.to_loop_nest op in
  match Loop_transforms.tile [| 4; 0; 8 |] nest with
  | Error e -> Alcotest.fail e
  | Ok t ->
      Alcotest.(check int) "5 loops" 5 (Loop_nest.n_loops t);
      Alcotest.(check (array int)) "trips" [| 2; 2; 4; 12; 8 |] (Loop_nest.trip_counts t);
      Alcotest.(check int) "point band starts at 2" 2 (Loop_transforms.point_band_start t)

let test_tile_rejects_non_divisor () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  Alcotest.(check bool) "error" true
    (Result.is_error (Loop_transforms.tile [| 3; 0; 0 |] nest))

let test_tile_rejects_all_zero () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  Alcotest.(check bool) "error" true
    (Result.is_error (Loop_transforms.tile [| 0; 0; 0 |] nest))

let test_tile_rejects_bad_arity () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  Alcotest.(check bool) "error" true
    (Result.is_error (Loop_transforms.tile [| 2; 2 |] nest))

let test_interchange_rejects_non_permutation () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  Alcotest.(check bool) "error" true
    (Result.is_error (Loop_transforms.interchange [| 0; 0; 1 |] nest))

let test_swap_rejects_out_of_range () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  Alcotest.(check bool) "error" true
    (Result.is_error (Loop_transforms.swap_adjacent 2 nest))

let test_interchange_targets_point_band () =
  (* After tiling, interchange permutes the inner (point) loops only. *)
  let op = Test_helpers.small_matmul () in
  let nest = Lower.to_loop_nest op in
  let tiled = Result.get_ok (Loop_transforms.tile [| 4; 4; 4 |] nest) in
  let swapped = Result.get_ok (Loop_transforms.swap_adjacent 0 tiled) in
  let outer_trips t = Array.sub (Loop_nest.trip_counts t) 0 3 in
  Alcotest.(check (array int)) "tile band untouched" (outer_trips tiled)
    (outer_trips swapped);
  let band = Loop_transforms.point_band swapped in
  Alcotest.(check (array int)) "point origins swapped" [| 1; 0; 2 |]
    (Array.map (fun (l : Loop_nest.loop) -> l.Loop_nest.origin) band)

let test_vectorize_marks_innermost () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  let v = Result.get_ok (Loop_transforms.vectorize nest) in
  Alcotest.(check bool) "flagged" true (Loop_transforms.is_vectorized v);
  Alcotest.(check bool) "twice is error" true
    (Result.is_error (Loop_transforms.vectorize v))

let test_parallel_band_flag () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  Alcotest.(check bool) "none yet" false (Loop_transforms.has_parallel_band nest);
  let p = Result.get_ok (Loop_transforms.tile ~parallel:true [| 4; 0; 0 |] nest) in
  Alcotest.(check bool) "parallel after" true (Loop_transforms.has_parallel_band p)

let qcheck_random_schedules_preserve =
  (* Any sequence of legal tiles/swaps on a small conv preserves
     semantics. *)
  QCheck.Test.make ~name:"random schedules preserve conv semantics" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Util.Rng.create seed in
      let op = Test_helpers.small_conv () in
      let state = ref (Sched_state.init op) in
      let steps = ref [] in
      for _ = 1 to 3 do
        let trips = Sched_state.point_trip_counts !state in
        let action =
          if Util.Rng.bool rng then begin
            let sizes =
              Array.map
                (fun t ->
                  let divs = Array.of_list (Loop_transforms.divisors t) in
                  let d = Util.Rng.choice rng divs in
                  if Util.Rng.bool rng || d = 1 then 0 else d)
                trips
            in
            if Array.exists (fun s -> s > 0) sizes then Some (Schedule.Tile sizes)
            else None
          end
          else Some (Schedule.Swap (Util.Rng.int rng (Array.length trips - 1)))
        in
        match action with
        | None -> ()
        | Some tr -> (
            match Sched_state.apply !state tr with
            | Ok st ->
                state := st;
                steps := tr :: !steps
            | Error _ -> ())
      done;
      Test_helpers.check_schedule_preserves op (List.rev !steps);
      true)

let suite =
  [
    Alcotest.test_case "divisors" `Quick test_divisors;
    Alcotest.test_case "tile preserves" `Quick test_tile_preserves;
    Alcotest.test_case "partial tile preserves" `Quick test_tile_partial_preserves;
    Alcotest.test_case "multi-level tiling preserves" `Quick
      test_multi_level_tiling_preserves;
    Alcotest.test_case "interchange preserves" `Quick test_interchange_preserves;
    Alcotest.test_case "swap preserves" `Quick test_swap_preserves;
    Alcotest.test_case "parallelize preserves" `Quick test_parallelize_preserves;
    Alcotest.test_case "vectorize preserves" `Quick test_vectorize_preserves;
    Alcotest.test_case "full pipeline preserves" `Quick test_full_pipeline_preserves;
    Alcotest.test_case "conv tiling preserves" `Quick test_conv_tiling_preserves;
    Alcotest.test_case "conv interchange preserves" `Quick
      test_conv_interchange_preserves;
    Alcotest.test_case "maxpool schedule preserves" `Quick
      test_maxpool_schedule_preserves;
    Alcotest.test_case "tile structure" `Quick test_tile_structure;
    Alcotest.test_case "tile rejects non-divisor" `Quick test_tile_rejects_non_divisor;
    Alcotest.test_case "tile rejects all-zero" `Quick test_tile_rejects_all_zero;
    Alcotest.test_case "tile rejects bad arity" `Quick test_tile_rejects_bad_arity;
    Alcotest.test_case "interchange rejects non-perm" `Quick
      test_interchange_rejects_non_permutation;
    Alcotest.test_case "swap rejects out of range" `Quick test_swap_rejects_out_of_range;
    Alcotest.test_case "interchange targets point band" `Quick
      test_interchange_targets_point_band;
    Alcotest.test_case "vectorize marks innermost" `Quick test_vectorize_marks_innermost;
    Alcotest.test_case "parallel band flag" `Quick test_parallel_band_flag;
    QCheck_alcotest.to_alcotest qcheck_random_schedules_preserve;
  ]
