(* Lint pass behavior, and its agreement with [Loop_nest.validate]:
   lint reports an Error-severity diagnostic exactly when validate
   rejects the nest — checked directly and over every example nest
   shipped under examples/nests/. *)

let check = Alcotest.(check bool)
let parse = Ir_parser.parse

let lint_agrees nest =
  let diags = Nest_lint.run nest in
  let valid = Result.is_ok (Loop_nest.validate nest) in
  check "lint Error iff validate rejects" (not valid)
    (Nest_lint.has_error diags)

let test_examples_agree () =
  let dir = "../examples/nests" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".nest")
    |> List.sort compare
  in
  check "found example nests" true (List.length files >= 5);
  List.iter
    (fun f ->
      let ic = open_in (Filename.concat dir f) in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let nest = parse text in
      lint_agrees nest;
      (* shipped examples must be clean of Errors *)
      check (f ^ " has no Error diagnostics") false
        (Nest_lint.has_error (Nest_lint.run nest)))
    files

let test_diagnostics () =
  (* dead buffer: declared, never touched *)
  let nest =
    parse
      "func @dead { buffer a : [4] buffer unused : [4] \
       for %0 = 0 to 4 origin 0 { store a[%0] = 1.0 } }"
  in
  let diags = Nest_lint.run nest in
  check "dead buffer flagged" true
    (List.exists
       (fun d ->
         d.Nest_lint.severity = Nest_lint.Warning
         && Astring_contains.contains d.Nest_lint.loc "unused"
         && Astring_contains.contains d.Nest_lint.message "dead buffer")
       diags);
  (* read-modify-write without init *)
  let rmw =
    parse
      "func @rmw { buffer a : [4] \
       for %0 = 0 to 4 origin 0 { store a[%0] = add(load a[%0], 1.0) } }"
  in
  check "uninitialized read flagged" true
    (List.exists
       (fun d -> d.Nest_lint.severity = Nest_lint.Warning)
       (Nest_lint.run rmw));
  (* trip-count-1 loop *)
  let trivial =
    parse
      "func @one { buffer a : [4, 1] \
       for %0 = 0 to 4 origin 0 { for %1 = 0 to 1 origin 1 { \
       store a[%0, %1] = 2.0 } } }"
  in
  check "trip-count-1 loop flagged" true
    (List.exists
       (fun d ->
         d.Nest_lint.severity = Nest_lint.Info
         && Astring_contains.contains d.Nest_lint.message "trip-count-1")
       (Nest_lint.run trivial));
  (* redundant init: initialized but never read *)
  let redundant =
    parse
      "func @ri { buffer a : [4] init 3.0 \
       for %0 = 0 to 4 origin 0 { store a[%0] = 1.0 } }"
  in
  check "redundant init flagged" true
    (List.exists
       (fun d -> d.Nest_lint.severity = Nest_lint.Info)
       (Nest_lint.run redundant));
  (* a clean nest stays clean *)
  let clean =
    parse
      "func @ok { buffer a : [4] buffer b : [4] \
       for %0 = 0 to 4 origin 0 { store b[%0] = add(load a[%0], 1.0) } }"
  in
  check "clean nest has no diagnostics" true (Nest_lint.run clean = [])

let test_invalid_nest_is_error () =
  (* subscript out of bounds: validate rejects, lint must report Error *)
  let nest =
    {
      Loop_nest.name = "oob";
      loops = [| { Loop_nest.ub = 8; kind = Loop_nest.Seq; origin = 0 } |];
      body =
        [
          Loop_nest.Store
            ( { Loop_nest.buf = "a"; idx = [| Affine.expr ~const:1 1 [ (0, 1) ] |] },
              Loop_nest.Const 1.0 );
        ];
      buffers = [ ("a", [| 8 |]) ];
      inits = [];
    }
  in
  check "validate rejects" true (Result.is_error (Loop_nest.validate nest));
  lint_agrees nest

(* --- Loop_nest.validate corner-sign coverage (per-coefficient-sign
       corner checking: with mixed signs only one corner of the domain
       maximizes the subscript, and only one minimizes it) --- *)

let mixed_sign_nest ~const =
  (* a[%0 - %1 + const] over 0<=%0<4, 0<=%1<4: range [const-3, const+3] *)
  {
    Loop_nest.name = "mixed";
    loops =
      [|
        { Loop_nest.ub = 4; kind = Loop_nest.Seq; origin = 0 };
        { Loop_nest.ub = 4; kind = Loop_nest.Seq; origin = 1 };
      |];
    body =
      [
        Loop_nest.Store
          ( {
              Loop_nest.buf = "a";
              idx = [| Affine.expr ~const 2 [ (0, 1); (1, -1) ] |];
            },
            Loop_nest.Const 1.0 );
      ];
    buffers = [ ("a", [| 7 |]) ];
    inits = [];
  }

let test_validate_corner_signs () =
  (* const 3: range [0, 6] fits shape 7 exactly *)
  check "mixed signs in bounds" true
    (Result.is_ok (Loop_nest.validate (mixed_sign_nest ~const:3)));
  (* const 2: low corner underflows to -1, high corner fine *)
  check "only the low corner overflows" true
    (Result.is_error (Loop_nest.validate (mixed_sign_nest ~const:2)));
  (* const 4: high corner overflows to 7, low corner fine *)
  check "only the high corner overflows" true
    (Result.is_error (Loop_nest.validate (mixed_sign_nest ~const:4)));
  (* lint agrees on all three *)
  lint_agrees (mixed_sign_nest ~const:3);
  lint_agrees (mixed_sign_nest ~const:2);
  lint_agrees (mixed_sign_nest ~const:4)

let suite =
  [
    Alcotest.test_case "examples agree with validate and are clean" `Quick
      test_examples_agree;
    Alcotest.test_case "diagnostics fire on crafted nests" `Quick
      test_diagnostics;
    Alcotest.test_case "invalid nest surfaces as Error" `Quick
      test_invalid_nest_is_error;
    Alcotest.test_case "validate corner-sign bounds" `Quick
      test_validate_corner_signs;
  ]
