(* The fleet layer of lib/serve, with no real sleeps and no forked
   processes:

   - Backoff: exact schedules under zero jitter, jitter bounds, reset,
     seed determinism;
   - Breaker: the full closed -> open -> half-open -> closed cycle on a
     scripted clock, including the read-time open -> half-open
     transition;
   - Router: determinism, owner/preference coherence, permutation,
     shard balance;
   - Supervisor: driven by [tick] under an injected mock clock, against
     in-process fake replicas (plain Replica.t records of closures) —
     restart scheduling with backoff spacing, crash detection, breaker
     shedding, hedged-retry rescue, unavailability, drain and reload
     holding accepted in-flight requests, metrics aggregation;
   - Faults.chaos_plan: determinism and argument validation;
   - Util.Atomic_file: atomicity of the temp+rename path. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Mock clock                                                          *)
(* ------------------------------------------------------------------ *)

type clock = { mutable t : float }

let mk_clock () = { t = 0.0 }
let clock_now c () = c.t
let clock_sleep c d = c.t <- c.t +. d

(* ------------------------------------------------------------------ *)
(* Fake replicas                                                       *)
(* ------------------------------------------------------------------ *)

let ok_reply id =
  Serve.Protocol.Ok_reply
    { r_id = id; schedule = "S0"; speedup = 1.0; policy_digest = "deadbeef" }

(* A healthy in-process replica: answers every verb, dies on [kill]. *)
let ok_replica ?(pid = None) () =
  let alive = ref true in
  let handle =
    {
      Serve.Replica.pid;
      describe = "fake-ok";
      call =
        (fun req ~timeout_s:_ ->
          if not !alive then Error (Serve.Replica.Connection "dead")
          else
            match req with
            | Serve.Protocol.Ping { id } ->
                Ok (Serve.Protocol.Pong { p_id = id })
            | Serve.Protocol.Optimize { id; _ } -> Ok (ok_reply id)
            | Serve.Protocol.Stats { id } ->
                Ok (Serve.Protocol.Stats_reply { s_id = id; body = "" })
            | Serve.Protocol.Metrics { id } ->
                Ok (Serve.Protocol.Metrics_reply { m_id = id; body = "" }));
      alive = (fun () -> !alive);
      kill = (fun () -> alive := false);
    }
  in
  (handle, alive)

(* Healthy on pings (so the heartbeat keeps it Up) but every optimize
   fails with [err]: the hedge-trigger / breaker-food replica. *)
let bad_optimize_replica err =
  let alive = ref true in
  {
    Serve.Replica.pid = None;
    describe = "fake-bad";
    call =
      (fun req ~timeout_s:_ ->
        if not !alive then Error (Serve.Replica.Connection "dead")
        else
          match req with
          | Serve.Protocol.Ping { id } -> Ok (Serve.Protocol.Pong { p_id = id })
          | Serve.Protocol.Optimize _ -> Error err
          | Serve.Protocol.Stats { id } ->
              Ok (Serve.Protocol.Stats_reply { s_id = id; body = "" })
          | Serve.Protocol.Metrics { id } ->
              Ok (Serve.Protocol.Metrics_reply { m_id = id; body = "" }));
    alive = (fun () -> !alive);
    kill = (fun () -> alive := false);
  }

(* A replica whose optimize calls block on a latch until [release] —
   for proving drain/reload wait out accepted in-flight requests. *)
let latched_replica () =
  let alive = ref true in
  let m = Mutex.create () in
  let c = Condition.create () in
  let released = ref false in
  let entered = ref 0 in
  let release () =
    Mutex.lock m;
    released := true;
    Condition.broadcast c;
    Mutex.unlock m
  in
  let handle =
    {
      Serve.Replica.pid = None;
      describe = "fake-latched";
      call =
        (fun req ~timeout_s:_ ->
          match req with
          | Serve.Protocol.Ping { id } -> Ok (Serve.Protocol.Pong { p_id = id })
          | Serve.Protocol.Optimize { id; _ } ->
              Mutex.lock m;
              incr entered;
              while not !released do
                Condition.wait c m
              done;
              Mutex.unlock m;
              Ok (ok_reply id)
          | Serve.Protocol.Stats { id } ->
              Ok (Serve.Protocol.Stats_reply { s_id = id; body = "" })
          | Serve.Protocol.Metrics { id } ->
              Ok (Serve.Protocol.Metrics_reply { m_id = id; body = "" }));
      alive = (fun () -> !alive);
      kill = (fun () -> alive := false);
    }
  in
  (handle, release, entered)

let no_jitter_backoff =
  { Serve.Backoff.base_s = 1.0; multiplier = 2.0; cap_s = 4.0; jitter = 0.0 }

let test_config ~replicas =
  {
    Serve.Supervisor.default_config with
    Serve.Supervisor.replicas;
    backoff = no_jitter_backoff;
  }

let make_sup ?config ~replicas ~launcher clock =
  let config =
    match config with Some c -> c | None -> test_config ~replicas
  in
  match
    Serve.Supervisor.create ~config ~now:(clock_now clock)
      ~sleep:(clock_sleep clock) ~launcher ()
  with
  | Ok s -> s
  | Error e -> failwith e

let states sup =
  Serve.Supervisor.status sup
  |> Array.map (fun r -> r.Serve.Supervisor.rs_state)
  |> Array.to_list

(* A spec string whose digest shard (on a fresh [replicas]-ring with
   the default vnodes) is [owner]. Deterministic: digests and the ring
   depend only on the strings. *)
let spec_owned_by ~replicas ~owner =
  let ring = Serve.Router.create ~replicas () in
  let rec go i =
    if i > 10_000 then failwith "no spec found for shard"
    else
      let s = Printf.sprintf "matmul:%dx32x32" (8 + i) in
      if
        Serve.Router.owner ring
          (Serve.Engine.target_digest (Serve.Protocol.Spec s))
        = owner
      then s
      else go (i + 1)
  in
  go 0

let optimize id spec =
  Serve.Protocol.Optimize
    { id; target = Serve.Protocol.Spec spec; deadline_ms = None }

(* Spin (yield, no sleep) until [p ()] holds — for handing off to real
   threads in the latch tests. *)
let spin_until ?(spins = 10_000_000) p =
  let rec go n =
    if p () then ()
    else if n = 0 then failwith "spin_until: condition never held"
    else begin
      Thread.yield ();
      go (n - 1)
    end
  in
  go spins

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

let test_backoff_schedule () =
  let b = Serve.Backoff.create ~seed:1 no_jitter_backoff in
  let d1 = Serve.Backoff.next b in
  let d2 = Serve.Backoff.next b in
  let d3 = Serve.Backoff.next b in
  let d4 = Serve.Backoff.next b in
  check "base first" true (d1 = 1.0);
  check "doubles" true (d2 = 2.0);
  check "caps" true (d3 = 4.0);
  check "stays capped" true (d4 = 4.0);
  check_int "attempts counted" 4 (Serve.Backoff.attempt b);
  Serve.Backoff.reset b;
  check_int "reset clears attempts" 0 (Serve.Backoff.attempt b);
  check "reset returns to base" true (Serve.Backoff.next b = 1.0)

let test_backoff_jitter_bounds () =
  let cfg =
    { Serve.Backoff.base_s = 0.1; multiplier = 2.0; cap_s = 2.0; jitter = 0.25 }
  in
  let b = Serve.Backoff.create ~seed:7 cfg in
  let ideal = ref cfg.Serve.Backoff.base_s in
  for i = 1 to 20 do
    let d = Serve.Backoff.next b in
    let lo = !ideal *. 0.75 and hi = !ideal *. 1.25 in
    check (Printf.sprintf "delay %d in [%g, %g]" i lo hi) true
      (d >= lo -. 1e-9 && d <= hi +. 1e-9);
    ideal :=
      Float.min cfg.Serve.Backoff.cap_s
        (!ideal *. cfg.Serve.Backoff.multiplier)
  done;
  check "max_delay is cap*(1+jitter)" true
    (Serve.Backoff.max_delay cfg = 2.0 *. 1.25)

let test_backoff_deterministic () =
  let cfg =
    { Serve.Backoff.base_s = 0.1; multiplier = 2.0; cap_s = 2.0; jitter = 0.1 }
  in
  let draw seed =
    let b = Serve.Backoff.create ~seed cfg in
    List.init 10 (fun _ -> Serve.Backoff.next b)
  in
  check "same seed, same schedule" true (draw 42 = draw 42);
  check "different seed, different schedule" true (draw 42 <> draw 43)

(* ------------------------------------------------------------------ *)
(* Breaker                                                             *)
(* ------------------------------------------------------------------ *)

let breaker_cfg =
  { Serve.Breaker.failure_threshold = 3; cooldown_s = 1.0; success_threshold = 2 }

let test_breaker_cycle () =
  let b = Serve.Breaker.create ~config:breaker_cfg () in
  let st now = Serve.Breaker.state b ~now in
  check "starts closed" true (st 0.0 = Serve.Breaker.Closed);
  Serve.Breaker.record_failure b ~now:0.0;
  Serve.Breaker.record_failure b ~now:0.1;
  check "two failures stay closed" true (st 0.1 = Serve.Breaker.Closed);
  Serve.Breaker.record_success b ~now:0.2;
  Serve.Breaker.record_failure b ~now:0.3;
  Serve.Breaker.record_failure b ~now:0.4;
  check "success resets the consecutive count" true
    (st 0.4 = Serve.Breaker.Closed);
  Serve.Breaker.record_failure b ~now:0.5;
  check "third consecutive failure trips open" true
    (st 0.5 = Serve.Breaker.Open);
  check "open sheds" false (Serve.Breaker.allow b ~now:0.6);
  (* The open -> half-open transition is a function of the clock. *)
  check "still open within cooldown" true (st 1.4 = Serve.Breaker.Open);
  check "reads half-open after cooldown" true
    (st 1.6 = Serve.Breaker.Half_open);
  check "half-open allows probes" true (Serve.Breaker.allow b ~now:1.6);
  (* A failure while half-open re-opens and restarts the cooldown. *)
  Serve.Breaker.record_failure b ~now:1.7;
  check "half-open failure re-opens" true (st 1.8 = Serve.Breaker.Open);
  check "cooldown restarted" true (st 2.8 = Serve.Breaker.Half_open);
  Serve.Breaker.record_success b ~now:2.9;
  check "one success not enough" true (st 2.9 = Serve.Breaker.Half_open);
  Serve.Breaker.record_success b ~now:3.0;
  check "success_threshold successes close" true
    (st 3.0 = Serve.Breaker.Closed);
  (* trip, re-trip from half-open, final close: the clock-driven
     open -> half-open reads are not stored transitions. *)
  check_int "transitions counted" 3 (Serve.Breaker.transitions b)

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let test_router_basics () =
  let ring = Serve.Router.create ~replicas:3 () in
  let keys = List.init 300 (fun i -> Printf.sprintf "digest-%d" i) in
  List.iter
    (fun k ->
      let pref = Serve.Router.preference ring k in
      check_int "preference covers every replica once" 3
        (List.length (List.sort_uniq compare pref));
      check_int "owner heads the preference list" (Serve.Router.owner ring k)
        (List.hd pref))
    keys;
  (* Determinism across independently built rings. *)
  let ring2 = Serve.Router.create ~replicas:3 () in
  check "owner is a pure function of key and ring shape" true
    (List.for_all
       (fun k -> Serve.Router.owner ring k = Serve.Router.owner ring2 k)
       keys);
  (* 64 vnodes/replica: every shard owns a non-trivial key share. *)
  let counts = Array.make 3 0 in
  List.iter (fun k -> counts.(Serve.Router.owner ring k) <- counts.(Serve.Router.owner ring k) + 1) keys;
  Array.iteri
    (fun i c ->
      check (Printf.sprintf "shard %d owns a fair share (%d keys)" i c) true
        (c > 15))
    counts

(* ------------------------------------------------------------------ *)
(* Supervisor: startup, restart scheduling                             *)
(* ------------------------------------------------------------------ *)

let test_supervisor_starts_healthy_fleet () =
  let clock = mk_clock () in
  let launches = ref 0 in
  let launcher ~index:_ =
    incr launches;
    Ok (fst (ok_replica ()))
  in
  let sup = make_sup ~replicas:3 ~launcher clock in
  check_str "launched, not yet probed" "starting starting starting"
    (String.concat " " (states sup));
  check "ready after probes" true
    (Serve.Supervisor.await_ready sup ~timeout_s:5.0);
  check_str "all up" "up up up" (String.concat " " (states sup));
  check_int "one launch per slot" 3 !launches;
  (match Serve.Supervisor.call sup (optimize "q1" "matmul:64x64x64") with
  | Serve.Protocol.Ok_reply { r_id; _ } -> check_str "reply id" "q1" r_id
  | _ -> Alcotest.fail "expected Ok_reply");
  Serve.Supervisor.drain sup;
  check "drained" true (Serve.Supervisor.draining sup);
  (match Serve.Supervisor.call sup (optimize "q2" "matmul:64x64x64") with
  | Serve.Protocol.Error_reply { code = Serve.Protocol.Shutting_down; _ } -> ()
  | _ -> Alcotest.fail "expected shutting_down while draining");
  check_str "drain is idempotent" "down" (List.hd (states (let () = Serve.Supervisor.drain sup in sup)))

(* Launcher fails forever: relaunch attempts must follow the exact
   zero-jitter backoff schedule (1s, 2s, 4s, 4s...) on the mock clock,
   with no attempt firing early. *)
let test_supervisor_restart_backoff_spacing () =
  let clock = mk_clock () in
  let attempt_times = ref [] in
  let launcher ~index:_ =
    attempt_times := clock.t :: !attempt_times;
    Error "refusing to start"
  in
  let sup = make_sup ~replicas:1 ~launcher clock in
  (* create at t=0 made the first attempt; next due at 0 + 1.0. *)
  let step dt =
    clock.t <- clock.t +. dt;
    Serve.Supervisor.tick sup
  in
  step 0.5 (* t=0.5: too early *);
  check_int "no attempt before the base delay" 1 (List.length !attempt_times);
  step 0.5 (* t=1.0: due *);
  check_int "second attempt at base delay" 2 (List.length !attempt_times);
  step 1.9 (* t=2.9: next due at 1.0 + 2.0 = 3.0 *);
  check_int "no attempt before the doubled delay" 2 (List.length !attempt_times);
  step 0.1 (* t=3.0 *);
  check_int "third attempt after doubling" 3 (List.length !attempt_times);
  step 3.9 (* t=6.9: next due at 3.0 + 4.0 (cap) = 7.0 *);
  check_int "no attempt before the capped delay" 3 (List.length !attempt_times);
  step 0.2 (* t=7.1 *);
  check_int "fourth attempt at the cap" 4 (List.length !attempt_times);
  let m = Serve.Supervisor.metrics sup in
  check_int "every failure counted" 4
    (Serve.Metrics.counter m "fleet_launch_failures_total");
  Serve.Supervisor.drain sup

let test_supervisor_crash_detect_and_restart () =
  let clock = mk_clock () in
  let launcher ~index:_ = Ok (fst (ok_replica ())) in
  let sup = make_sup ~replicas:3 ~launcher clock in
  check "ready" true (Serve.Supervisor.await_ready sup ~timeout_s:5.0);
  let gen_before = (Serve.Supervisor.status sup).(1).Serve.Supervisor.rs_generation in
  (* SIGKILL equivalent: the fake dies without telling the supervisor. *)
  Serve.Supervisor.kill_replica sup 1;
  Serve.Supervisor.tick sup;
  check_str "crash discovered by the health pass" "down"
    (List.nth (states sup) 1);
  let m = Serve.Supervisor.metrics sup in
  check "crash counted" true
    (Serve.Metrics.counter m "fleet_crashes_detected_total" >= 1);
  (* Before the backoff delay: still down. *)
  Serve.Supervisor.tick sup;
  check_str "not relaunched early" "down" (List.nth (states sup) 1);
  clock.t <- clock.t +. 1.1;
  Serve.Supervisor.tick sup (* relaunch *);
  Serve.Supervisor.tick sup (* probe -> up *);
  let st = (Serve.Supervisor.status sup).(1) in
  check_str "replica recovered" "up" st.Serve.Supervisor.rs_state;
  check_int "restart counted" 1 st.Serve.Supervisor.rs_restarts;
  check "generation bumped" true (st.Serve.Supervisor.rs_generation > gen_before);
  check "restart metric" true
    (Serve.Metrics.counter m "fleet_restarts_total" >= 1);
  (* The two bystander replicas were never touched. *)
  check_int "no collateral restarts" 0
    ((Serve.Supervisor.status sup).(0).Serve.Supervisor.rs_restarts
    + (Serve.Supervisor.status sup).(2).Serve.Supervisor.rs_restarts);
  Serve.Supervisor.drain sup

(* start_heartbeat after stop_heartbeat must spawn a live supervision
   loop: a stale stop flag used to make the second thread exit
   immediately, silently ending supervision. The heartbeat thread is
   real; only the clock it ticks on is mocked, so recovery is awaited
   under a wall-clock bound instead of driven by manual [tick]. *)
let test_supervisor_heartbeat_restartable () =
  let wait_for ?(timeout = 10.0) pred =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      if pred () then true
      else if Unix.gettimeofday () >= deadline then false
      else begin
        Thread.yield ();
        go ()
      end
    in
    go ()
  in
  let clock = mk_clock () in
  let launcher ~index:_ = Ok (fst (ok_replica ())) in
  let sup = make_sup ~replicas:1 ~launcher clock in
  check "ready" true (Serve.Supervisor.await_ready sup ~timeout_s:5.0);
  let restarts () =
    (Serve.Supervisor.status sup).(0).Serve.Supervisor.rs_restarts
  in
  Serve.Supervisor.start_heartbeat sup;
  Serve.Supervisor.kill_replica sup 0;
  check "heartbeat restarts the killed replica" true
    (wait_for (fun () -> restarts () >= 1));
  Serve.Supervisor.stop_heartbeat sup;
  Serve.Supervisor.start_heartbeat sup;
  Serve.Supervisor.kill_replica sup 0;
  check "heartbeat restarted after stop still supervises" true
    (wait_for (fun () -> restarts () >= 2));
  Serve.Supervisor.drain sup

(* ------------------------------------------------------------------ *)
(* Supervisor: request path                                            *)
(* ------------------------------------------------------------------ *)

(* Replica 0 times out every optimize; requests homed on it must be
   hedged to replica 1, and after failure_threshold transport errors
   the breaker opens and sheds — no further hedges needed. *)
let test_supervisor_hedge_and_breaker_shed () =
  let clock = mk_clock () in
  let launcher ~index =
    if index = 0 then Ok (bad_optimize_replica Serve.Replica.Timeout)
    else Ok (fst (ok_replica ()))
  in
  let sup = make_sup ~replicas:2 ~launcher clock in
  check "ready" true (Serve.Supervisor.await_ready sup ~timeout_s:5.0);
  let spec = spec_owned_by ~replicas:2 ~owner:0 in
  let m = Serve.Supervisor.metrics sup in
  let threshold = breaker_cfg.Serve.Breaker.failure_threshold in
  for i = 1 to threshold do
    match Serve.Supervisor.call sup (optimize (Printf.sprintf "h%d" i) spec) with
    | Serve.Protocol.Ok_reply { r_id; _ } ->
        check_str "hedged reply keeps the request id"
          (Printf.sprintf "h%d" i) r_id
    | _ -> Alcotest.fail "expected a hedged Ok_reply"
  done;
  check_int "one hedge per failed attempt" threshold
    (Serve.Metrics.counter m "fleet_hedges_total");
  check_int "every hedge rescued" threshold
    (Serve.Metrics.counter m "fleet_hedge_rescues_total");
  check "breaker open after consecutive transport failures" true
    ((Serve.Supervisor.status sup).(0).Serve.Supervisor.rs_breaker
    = Serve.Breaker.Open);
  (* Shed: the open breaker removes replica 0 from pick, so the next
     request goes straight to replica 1 — no new hedge. *)
  (match Serve.Supervisor.call sup (optimize "shed" spec) with
  | Serve.Protocol.Ok_reply _ -> ()
  | _ -> Alcotest.fail "expected a shed Ok_reply");
  check_int "no hedge once shedding" threshold
    (Serve.Metrics.counter m "fleet_hedges_total");
  Serve.Supervisor.drain sup

let test_supervisor_garbled_reply_is_hedged () =
  let clock = mk_clock () in
  let launcher ~index =
    if index = 0 then
      Ok (bad_optimize_replica (Serve.Replica.Garbled "wrong id"))
    else Ok (fst (ok_replica ()))
  in
  let sup = make_sup ~replicas:2 ~launcher clock in
  check "ready" true (Serve.Supervisor.await_ready sup ~timeout_s:5.0);
  let spec = spec_owned_by ~replicas:2 ~owner:0 in
  (match Serve.Supervisor.call sup (optimize "g1" spec) with
  | Serve.Protocol.Ok_reply { r_id; _ } -> check_str "rescued" "g1" r_id
  | _ -> Alcotest.fail "expected rescue of a garbled reply");
  check_int "garble counted as hedge rescue" 1
    (Serve.Metrics.counter (Serve.Supervisor.metrics sup)
       "fleet_hedge_rescues_total");
  Serve.Supervisor.drain sup

let test_supervisor_upstream_failure_and_no_hedge () =
  (* Single replica, failing optimize: the hedge has nowhere to go. *)
  let clock = mk_clock () in
  let launcher ~index:_ = Ok (bad_optimize_replica Serve.Replica.Timeout) in
  let sup = make_sup ~replicas:1 ~launcher clock in
  check "ready" true (Serve.Supervisor.await_ready sup ~timeout_s:5.0);
  (match Serve.Supervisor.call sup (optimize "u1" "matmul:32x32x32") with
  | Serve.Protocol.Error_reply { code = Serve.Protocol.Upstream_failure; _ } ->
      ()
  | _ -> Alcotest.fail "expected upstream_failure with no hedge target");
  Serve.Supervisor.drain sup;
  (* hedge = false: fail typed and fast, no second attempt. *)
  let clock = mk_clock () in
  let cfg = { (test_config ~replicas:2) with Serve.Supervisor.hedge = false } in
  let launcher ~index =
    if index = 0 then Ok (bad_optimize_replica Serve.Replica.Timeout)
    else Ok (fst (ok_replica ()))
  in
  let sup = make_sup ~config:cfg ~replicas:2 ~launcher clock in
  check "ready" true (Serve.Supervisor.await_ready sup ~timeout_s:5.0);
  let spec = spec_owned_by ~replicas:2 ~owner:0 in
  (match Serve.Supervisor.call sup (optimize "u2" spec) with
  | Serve.Protocol.Error_reply { code = Serve.Protocol.Upstream_failure; _ } ->
      ()
  | _ -> Alcotest.fail "expected upstream_failure with hedging disabled");
  check_int "no hedge when disabled" 0
    (Serve.Metrics.counter (Serve.Supervisor.metrics sup) "fleet_hedges_total");
  Serve.Supervisor.drain sup

let test_supervisor_unavailable_when_all_down () =
  let clock = mk_clock () in
  let launcher ~index:_ = Error "no binary" in
  let sup = make_sup ~replicas:3 ~launcher clock in
  (match Serve.Supervisor.call sup (optimize "n1" "matmul:32x32x32") with
  | Serve.Protocol.Error_reply { code = Serve.Protocol.Unavailable; _ } -> ()
  | _ -> Alcotest.fail "expected unavailable with the whole fleet down");
  check_int "unavailability counted" 1
    (Serve.Metrics.counter (Serve.Supervisor.metrics sup)
       "fleet_unavailable_total");
  Serve.Supervisor.drain sup

(* ------------------------------------------------------------------ *)
(* Supervisor: drain / reload never drop accepted in-flight requests   *)
(* ------------------------------------------------------------------ *)

let test_supervisor_drain_waits_for_in_flight () =
  let clock = mk_clock () in
  let handle, release, entered = latched_replica () in
  let launcher ~index:_ = Ok handle in
  let sup = make_sup ~replicas:1 ~launcher clock in
  check "ready" true (Serve.Supervisor.await_ready sup ~timeout_s:5.0);
  let reply = ref None in
  let client =
    Thread.create
      (fun () ->
        reply := Some (Serve.Supervisor.call sup (optimize "d1" "matmul:32x32x32")))
      ()
  in
  (* The request is accepted (inside the replica, in_flight = 1)... *)
  spin_until (fun () -> !entered = 1);
  check_int "accepted request is in flight" 1
    (Serve.Supervisor.status sup).(0).Serve.Supervisor.rs_in_flight;
  (* ... and a concurrent drain must wait it out, not drop it. *)
  let drainer = Thread.create (fun () -> Serve.Supervisor.drain sup) () in
  spin_until (fun () -> Serve.Supervisor.draining sup);
  check "drain blocked on the in-flight request" true
    ((Serve.Supervisor.status sup).(0).Serve.Supervisor.rs_in_flight = 1);
  release ();
  Thread.join client;
  Thread.join drainer;
  (match !reply with
  | Some (Serve.Protocol.Ok_reply { r_id; _ }) ->
      check_str "accepted request answered through drain" "d1" r_id
  | _ -> Alcotest.fail "in-flight request was dropped by drain");
  check_int "nothing left in flight" 0
    (Serve.Supervisor.status sup).(0).Serve.Supervisor.rs_in_flight

let test_supervisor_reload_waits_and_swaps () =
  let clock = mk_clock () in
  let handle, release, entered = latched_replica () in
  let generation = ref 0 in
  let launcher ~index:_ =
    incr generation;
    if !generation = 1 then Ok handle else Ok (fst (ok_replica ()))
  in
  let sup = make_sup ~replicas:1 ~launcher clock in
  check "ready" true (Serve.Supervisor.await_ready sup ~timeout_s:5.0);
  let reply = ref None in
  let client =
    Thread.create
      (fun () ->
        reply := Some (Serve.Supervisor.call sup (optimize "r1" "matmul:32x32x32")))
      ()
  in
  spin_until (fun () -> !entered = 1);
  let reload_result = ref (Error "not run") in
  let reloader =
    Thread.create (fun () -> reload_result := Serve.Supervisor.reload sup) ()
  in
  (* Reload fences the slot and waits: the old process must still be
     serving the accepted request. *)
  spin_until (fun () ->
      (Serve.Supervisor.status sup).(0).Serve.Supervisor.rs_state = "draining");
  check "old replica still holds the request" true ((Serve.Supervisor.status sup).(0).Serve.Supervisor.rs_in_flight = 1);
  release ();
  Thread.join client;
  Thread.join reloader;
  (match !reply with
  | Some (Serve.Protocol.Ok_reply { r_id; _ }) ->
      check_str "accepted request survived the reload" "r1" r_id
  | _ -> Alcotest.fail "in-flight request was dropped by reload");
  check "reload succeeded" true (!reload_result = Ok ());
  let st = (Serve.Supervisor.status sup).(0) in
  check_str "new replica serving" "up" st.Serve.Supervisor.rs_state;
  check_int "launcher ran twice" 2 !generation;
  (* The swap reaches the request path: the latched replica is gone. *)
  (match Serve.Supervisor.call sup (optimize "r2" "matmul:32x32x32") with
  | Serve.Protocol.Ok_reply { r_id; _ } -> check_str "served by new" "r2" r_id
  | _ -> Alcotest.fail "expected the reloaded replica to serve");
  Serve.Supervisor.drain sup

(* ------------------------------------------------------------------ *)
(* Metrics aggregation                                                 *)
(* ------------------------------------------------------------------ *)

let test_metrics_merge_rendered () =
  let a = Serve.Metrics.create () and b = Serve.Metrics.create () in
  Serve.Metrics.incr a ~by:2 "serve_requests_total";
  Serve.Metrics.incr b ~by:3 "serve_requests_total";
  Serve.Metrics.incr b "serve_cache_hits_total";
  Serve.Metrics.set_gauge a "serve_queue_depth" 4.0;
  Serve.Metrics.set_gauge b "serve_queue_depth" 1.0;
  Serve.Metrics.observe a "serve_latency_seconds" 0.010;
  Serve.Metrics.observe b "serve_latency_seconds" 0.020;
  let merged =
    Serve.Metrics.merge_rendered
      [ Serve.Metrics.render a; Serve.Metrics.render b ]
  in
  let has s = Astring_contains.contains merged s in
  check "counters sum across replicas" true (has "serve_requests_total 5");
  check "lone counters pass through" true (has "serve_cache_hits_total 1");
  check "gauges sum" true (has "serve_queue_depth 5");
  check "histogram counts sum" true (has "serve_latency_seconds_count 2")

let test_supervisor_fleet_metrics () =
  let clock = mk_clock () in
  let launcher ~index:_ = Ok (fst (ok_replica ())) in
  let sup = make_sup ~replicas:2 ~launcher clock in
  check "ready" true (Serve.Supervisor.await_ready sup ~timeout_s:5.0);
  ignore (Serve.Supervisor.call sup (optimize "m1" "matmul:32x32x32"));
  let m = Serve.Supervisor.metrics sup in
  check_int "request counted" 1 (Serve.Metrics.counter m "fleet_requests_total");
  check_int "ok reply counted" 1
    (Serve.Metrics.counter m "fleet_replies_ok_total");
  check "latency observed" true
    (Serve.Metrics.hist_count m "fleet_latency_seconds" = 1);
  check "up gauge" true (Serve.Metrics.gauge m "fleet_replica_0_up" = Some 1.0);
  let rendered = Serve.Supervisor.render_metrics sup in
  check "rendered fleet series" true
    (Astring_contains.contains rendered "fleet_requests_total 1");
  (* The status body is the stats verb's payload. *)
  (match Serve.Supervisor.call sup (Serve.Protocol.Stats { id = "s" }) with
  | Serve.Protocol.Stats_reply { body; _ } ->
      check "status body lists replicas" true
        (Astring_contains.contains body "replica=1 state=up")
  | _ -> Alcotest.fail "expected stats reply");
  Serve.Supervisor.drain sup

(* ------------------------------------------------------------------ *)
(* Chaos plans                                                         *)
(* ------------------------------------------------------------------ *)

let test_chaos_plan_deterministic () =
  let mk seed =
    Faults.chaos_plan ~seed ~replicas:3 ~duration_s:10.0 ~kill_rate:0.5
      ~stall_rate:0.2 ~stall_seconds:0.4 ()
  in
  let p1 = mk 99 and p2 = mk 99 in
  check "same seed, same plan" true (p1 = p2);
  check "different seed, different plan" true (p1 <> mk 100);
  check "events stay inside the duration" true
    (List.for_all
       (fun (e : Faults.chaos_event) ->
         e.Faults.at_s >= 0.0 && e.Faults.at_s < 10.0)
       p1);
  check "events are time-sorted" true
    (List.sort (fun (a : Faults.chaos_event) b -> compare a.Faults.at_s b.Faults.at_s) p1 = p1);
  check "replica indices in range" true
    (List.for_all
       (fun (e : Faults.chaos_event) ->
         e.Faults.replica >= 0 && e.Faults.replica < 3)
       p1);
  check "stall durations in [0.5, 1.5] * stall_seconds" true
    (List.for_all
       (fun (e : Faults.chaos_event) ->
         match e.Faults.action with
         | Faults.Stall d -> d >= 0.2 -. 1e-9 && d <= 0.6 +. 1e-9
         | _ -> true)
       p1);
  check "zero rates, empty plan" true
    (Faults.chaos_plan ~seed:1 ~replicas:3 ~duration_s:10.0 ~kill_rate:0.0 ()
    = []);
  check "negative rate rejected" true
    (try
       ignore
         (Faults.chaos_plan ~seed:1 ~replicas:3 ~duration_s:1.0
            ~kill_rate:(-1.0) ());
       false
     with Invalid_argument _ -> true);
  check "zero replicas rejected" true
    (try
       ignore (Faults.chaos_plan ~seed:1 ~replicas:0 ~duration_s:1.0 ());
       false
     with Invalid_argument _ -> true)

let test_chaos_event_strings () =
  check_str "kill event" "t=1.250s replica=2 kill"
    (Faults.chaos_event_to_string
       { Faults.at_s = 1.25; replica = 2; action = Faults.Kill_replica })

(* ------------------------------------------------------------------ *)
(* Atomic file writes                                                  *)
(* ------------------------------------------------------------------ *)

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_atomic_file_write_and_abort () =
  let dir = Filename.temp_file "atomic-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "artifact.json" in
  Util.Atomic_file.write_string ~path "{\"v\": 1}\n";
  check_str "first write lands" "{\"v\": 1}\n" (read_all path);
  Util.Atomic_file.write_string ~path "{\"v\": 2}\n";
  check_str "overwrite replaces content" "{\"v\": 2}\n" (read_all path);
  (* A writer that dies mid-dump must leave the old content intact and
     no temp debris behind. *)
  (try
     Util.Atomic_file.with_out ~path (fun oc ->
         output_string oc "half-written garbage";
         failwith "simulated crash")
   with Failure _ -> ());
  check_str "aborted write leaves the previous content" "{\"v\": 2}\n"
    (read_all path);
  check_int "no temp files left behind" 1 (Array.length (Sys.readdir dir));
  Sys.remove path;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "backoff: zero-jitter schedule" `Quick
      test_backoff_schedule;
    Alcotest.test_case "backoff: jitter bounds" `Quick
      test_backoff_jitter_bounds;
    Alcotest.test_case "backoff: seed determinism" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "breaker: full transition cycle" `Quick
      test_breaker_cycle;
    Alcotest.test_case "router: owner, preference, balance" `Quick
      test_router_basics;
    Alcotest.test_case "supervisor: healthy fleet startup + drain" `Quick
      test_supervisor_starts_healthy_fleet;
    Alcotest.test_case "supervisor: restart backoff spacing" `Quick
      test_supervisor_restart_backoff_spacing;
    Alcotest.test_case "supervisor: crash detection + restart" `Quick
      test_supervisor_crash_detect_and_restart;
    Alcotest.test_case "supervisor: heartbeat restart after stop" `Quick
      test_supervisor_heartbeat_restartable;
    Alcotest.test_case "supervisor: hedge rescue + breaker shed" `Quick
      test_supervisor_hedge_and_breaker_shed;
    Alcotest.test_case "supervisor: garbled reply hedged" `Quick
      test_supervisor_garbled_reply_is_hedged;
    Alcotest.test_case "supervisor: upstream failure, hedge off" `Quick
      test_supervisor_upstream_failure_and_no_hedge;
    Alcotest.test_case "supervisor: unavailable when fleet down" `Quick
      test_supervisor_unavailable_when_all_down;
    Alcotest.test_case "supervisor: drain holds in-flight" `Quick
      test_supervisor_drain_waits_for_in_flight;
    Alcotest.test_case "supervisor: reload holds in-flight + swaps" `Quick
      test_supervisor_reload_waits_and_swaps;
    Alcotest.test_case "metrics: merge_rendered sums fleets" `Quick
      test_metrics_merge_rendered;
    Alcotest.test_case "supervisor: fleet metrics + status body" `Quick
      test_supervisor_fleet_metrics;
    Alcotest.test_case "chaos plan: determinism + validation" `Quick
      test_chaos_plan_deterministic;
    Alcotest.test_case "chaos plan: event rendering" `Quick
      test_chaos_event_strings;
    Alcotest.test_case "atomic file: write, overwrite, abort" `Quick
      test_atomic_file_write_and_abort;
  ]
