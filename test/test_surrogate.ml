(* The learned cost-model surrogate: feature encoding, the evaluation
   log, the trained predictor, the ranker cache, and the staged search
   wiring.

   The load-bearing properties pinned here:
   - feature vectors are deterministic, fixed-width, and identical
     whether built from a logged state or from (op, candidate) at
     ranking time;
   - [Schedule.dedup_key] is injective exactly where [to_string] is,
     and the buffer-appending variant agrees with it;
   - the evaluation log deduplicates by (digest | machine), rotates at
     capacity, and its save/load/merge cycle round-trips floats exactly
     (hex encoding);
   - training is seeded end to end (same log + seed => bit-identical
     predictions) and a checkpoint round-trip predicts identically;
   - the ranker's batched scoring agrees with its single-candidate
     path, and its bounded memo reports honest hit/miss/eviction
     counters through the evaluator's unified cache stats;
   - [Auto_scheduler.search_staged] without a ranker is byte-identical
     to [search] (the no-checkpoint fallback), and with a constant
     ranker plus a full re-rank budget it recovers the exact optimum. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let check_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

let machine = Machine.e5_2680_v4

(* ------------------------------------------------------------------ *)
(* Features                                                           *)
(* ------------------------------------------------------------------ *)

let sample_schedules : Schedule.t list =
  [
    [];
    [ Schedule.Vectorize ];
    [ Schedule.Tile [| 0; 32; 8 |]; Schedule.Vectorize ];
    [ Schedule.Parallelize [| 4; 0; 0 |]; Schedule.Swap 0 ];
    [ Schedule.Interchange [| 2; 0; 1 |]; Schedule.Unroll 4 ];
    [ Schedule.Tile [| 16; 16; 16 |]; Schedule.Im2col; Schedule.Vectorize ];
  ]

let test_feature_widths () =
  check_int "dim decomposes" Surrogate.Features.dim
    (Surrogate.Features.machine_dim + Surrogate.Features.op_dim
   + Surrogate.Features.schedule_dim);
  let op = Linalg.matmul ~m:24 ~n:16 ~k:8 () in
  List.iter
    (fun sched ->
      let v = Surrogate.Features.of_schedule ~machine op sched in
      check_int "vector width" Surrogate.Features.dim (Array.length v);
      let v' = Surrogate.Features.of_schedule ~machine op sched in
      Array.iteri (fun i x -> check_bits "deterministic" x v'.(i)) v)
    sample_schedules

let test_schedule_block_into_matches () =
  (* The batched ranker reuses one dirty buffer; _into must fully
     overwrite it. *)
  let buf = Array.make Surrogate.Features.schedule_dim 42.0 in
  List.iter
    (fun sched ->
      Array.fill buf 0 (Array.length buf) 42.0;
      Surrogate.Features.schedule_block_into buf sched;
      let fresh = Surrogate.Features.schedule_block sched in
      Array.iteri (fun i x -> check_bits "into = fresh" x buf.(i)) fresh)
    sample_schedules

let test_of_state_matches_of_schedule () =
  let op = Linalg.matmul ~m:24 ~n:16 ~k:8 () in
  let sched = [ Schedule.Tile [| 0; 8; 4 |]; Schedule.Vectorize ] in
  match Sched_state.apply_all op sched with
  | Error e -> Alcotest.fail e
  | Ok state ->
      let a = Surrogate.Features.of_state ~machine state in
      let b = Surrogate.Features.of_schedule ~machine op sched in
      Array.iteri (fun i x -> check_bits "state = schedule" x b.(i)) a

let test_op_block_cache () =
  let cache = Surrogate.Features.create_cache () in
  let op = Linalg.matmul ~m:24 ~n:16 ~k:8 () in
  let a = Surrogate.Features.cached_op_block cache op in
  let b = Surrogate.Features.cached_op_block cache op in
  check "cached block is shared" true (a == b);
  let direct = Surrogate.Features.op_block op in
  Array.iteri (fun i x -> check_bits "cache = direct" x a.(i)) direct

(* ------------------------------------------------------------------ *)
(* Schedule dedup keys                                                *)
(* ------------------------------------------------------------------ *)

let test_dedup_key_injective () =
  let pool =
    sample_schedules
    @ [
        [ Schedule.Tile [| 0; 32; 80 |] ];
        (* adjacent int fields must not merge: T(3,28) vs T(32,8) *)
        [ Schedule.Tile [| 3; 28 |] ];
        [ Schedule.Tile [| 32; 8 |] ];
        [ Schedule.Swap 1; Schedule.Swap 0 ];
        [ Schedule.Swap 0; Schedule.Swap 1 ];
      ]
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun sched ->
      let key = Schedule.dedup_key sched in
      (match Hashtbl.find_opt seen key with
      | Some other ->
          Alcotest.failf "dedup_key collision: %s vs %s"
            (Schedule.to_string other) (Schedule.to_string sched)
      | None -> Hashtbl.add seen key sched);
      (* buffer variant agrees, including after a prefix *)
      let b = Buffer.create 8 in
      Buffer.add_string b "7|";
      Schedule.add_dedup_key b sched;
      check_str "add_dedup_key = prefix ^ dedup_key" ("7|" ^ key)
        (Buffer.contents b))
    pool;
  check_int "all distinct" (List.length pool) (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* Dataset log                                                        *)
(* ------------------------------------------------------------------ *)

let entry i =
  {
    Surrogate.Dataset_log.digest = Printf.sprintf "digest-%d" i;
    machine = "test-machine";
    seconds = 1e-6 *. float_of_int (i + 1) /. 3.0;
    features =
      Array.init Surrogate.Features.dim (fun j ->
          Float.sin (float_of_int ((i * Surrogate.Features.dim) + j)));
  }

let test_log_dedup_and_rotation () =
  let log = Surrogate.Dataset_log.create ~capacity:3 () in
  check "first add accepted" true (Surrogate.Dataset_log.add log (entry 0));
  check "duplicate rejected" false (Surrogate.Dataset_log.add log (entry 0));
  for i = 1 to 4 do
    ignore (Surrogate.Dataset_log.add log (entry i))
  done;
  let s = Surrogate.Dataset_log.stats log in
  check_int "added" 5 s.Surrogate.Dataset_log.added;
  check_int "duplicates" 1 s.Surrogate.Dataset_log.duplicates;
  check_int "rotated" 2 s.Surrogate.Dataset_log.rotated;
  check_int "size" 3 s.Surrogate.Dataset_log.size;
  let digests =
    Array.map
      (fun e -> e.Surrogate.Dataset_log.digest)
      (Surrogate.Dataset_log.entries log)
  in
  Alcotest.(check (array string))
    "oldest rotated out"
    [| "digest-2"; "digest-3"; "digest-4" |]
    digests

let test_log_save_load_roundtrip () =
  let log = Surrogate.Dataset_log.create () in
  for i = 0 to 7 do
    ignore (Surrogate.Dataset_log.add log (entry i))
  done;
  let path = Filename.temp_file "surrogate_log" ".tsv" in
  let written = Surrogate.Dataset_log.save log ~path in
  check_int "rows written" 8 written;
  (match Surrogate.Dataset_log.load ~path with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
      let a = Surrogate.Dataset_log.entries log in
      let b = Surrogate.Dataset_log.entries loaded in
      check_int "same length" (Array.length a) (Array.length b);
      Array.iteri
        (fun i (ea : Surrogate.Dataset_log.entry) ->
          let eb = b.(i) in
          check_str "digest" ea.Surrogate.Dataset_log.digest
            eb.Surrogate.Dataset_log.digest;
          check_str "machine" ea.Surrogate.Dataset_log.machine
            eb.Surrogate.Dataset_log.machine;
          check_bits "seconds exact" ea.Surrogate.Dataset_log.seconds
            eb.Surrogate.Dataset_log.seconds;
          Array.iteri
            (fun j x -> check_bits "feature exact" x
                eb.Surrogate.Dataset_log.features.(j))
            ea.Surrogate.Dataset_log.features)
        a);
  Sys.remove path

let test_log_save_merge () =
  let path = Filename.temp_file "surrogate_log" ".tsv" in
  let first = Surrogate.Dataset_log.create () in
  ignore (Surrogate.Dataset_log.add first (entry 0));
  ignore (Surrogate.Dataset_log.add first (entry 1));
  ignore (Surrogate.Dataset_log.save first ~path);
  let second = Surrogate.Dataset_log.create () in
  ignore (Surrogate.Dataset_log.add second (entry 1));
  (* overlaps the file *)
  ignore (Surrogate.Dataset_log.add second (entry 2));
  let written = Surrogate.Dataset_log.save second ~path in
  check_int "merged row count" 3 written;
  (match Surrogate.Dataset_log.load ~path with
  | Error e -> Alcotest.fail e
  | Ok merged ->
      let digests =
        Array.map
          (fun e -> e.Surrogate.Dataset_log.digest)
          (Surrogate.Dataset_log.entries merged)
      in
      Alcotest.(check (array string))
        "file rows first, memory-only rows appended"
        [| "digest-0"; "digest-1"; "digest-2" |]
        digests);
  Sys.remove path

let test_log_load_rejects_garbage () =
  let path = Filename.temp_file "surrogate_log" ".tsv" in
  let reject label content =
    Util.Atomic_file.write_string ~path content;
    match Surrogate.Dataset_log.load ~path with
    | Ok _ -> Alcotest.failf "%s: expected load error" label
    | Error _ -> ()
  in
  reject "bad magic" "not-a-log\n";
  reject "bad dim" "surrogate-log v1 dim=3\nd\tm\t0x1p-20\t1 2 3\n";
  Sys.remove path;
  match Surrogate.Dataset_log.load ~path with
  | Ok _ -> Alcotest.fail "missing file: expected load error"
  | Error _ -> ()

let test_log_evaluator_tap () =
  let log = Surrogate.Dataset_log.create () in
  let ev = Evaluator.create () in
  Surrogate.Dataset_log.attach log ev;
  let config =
    { Auto_scheduler.default_config with Auto_scheduler.max_schedules = 48 }
  in
  ignore (Auto_scheduler.search ~config ev (Linalg.matmul ~m:16 ~n:16 ~k:16 ()));
  Surrogate.Dataset_log.detach ev;
  let n = Surrogate.Dataset_log.length log in
  check "tap collected rows" true (n > 0);
  Array.iter
    (fun (e : Surrogate.Dataset_log.entry) ->
      check_int "feature width" Surrogate.Features.dim
        (Array.length e.Surrogate.Dataset_log.features);
      check "positive seconds" true (e.Surrogate.Dataset_log.seconds > 0.0);
      check_str "machine name" machine.Machine.name
        e.Surrogate.Dataset_log.machine)
    (Surrogate.Dataset_log.entries log);
  (* detached: further searches add nothing *)
  ignore (Auto_scheduler.search ~config ev (Linalg.matmul ~m:8 ~n:8 ~k:8 ()));
  check_int "detach stops collection" n (Surrogate.Dataset_log.length log)

(* ------------------------------------------------------------------ *)
(* Model                                                              *)
(* ------------------------------------------------------------------ *)

(* A synthetic log with learnable structure: log-seconds linear in a
   couple of feature coordinates plus a small nonlinearity. *)
let synthetic_entries n =
  Array.init n (fun i ->
      let features =
        Array.init Surrogate.Features.dim (fun j ->
            Float.sin (float_of_int (((i + 1) * (j + 3)) mod 97) /. 9.7))
      in
      let log_sec =
        -14.0 +. (2.0 *. features.(0)) -. (1.5 *. features.(7))
        +. (0.5 *. features.(3) *. features.(3))
      in
      {
        Surrogate.Dataset_log.digest = Printf.sprintf "syn-%d" i;
        machine = "syn-machine";
        seconds = Float.exp log_sec;
        features;
      })

let test_model_fit_decreases_val_loss () =
  let entries = synthetic_entries 160 in
  let model = Surrogate.Model.create ~seed:11 () in
  let report = Surrogate.Model.fit ~epochs:6 ~seed:11 model entries in
  check "val split nonempty" true (report.Surrogate.Model.val_examples > 0);
  check "train split nonempty" true (report.Surrogate.Model.train_examples > 0);
  let final =
    report.Surrogate.Model.val_losses.(report.Surrogate.Model.epochs_run - 1)
  in
  check "val loss decreased" true
    (final < report.Surrogate.Model.initial_val_loss)

let test_model_fit_deterministic () =
  let entries = synthetic_entries 80 in
  let fit_once () =
    let model = Surrogate.Model.create ~seed:5 () in
    ignore (Surrogate.Model.fit ~epochs:3 ~seed:5 model entries);
    model
  in
  let a = fit_once () and b = fit_once () in
  Array.iter
    (fun e ->
      check_bits "same prediction"
        (Surrogate.Model.predict a e.Surrogate.Dataset_log.features)
        (Surrogate.Model.predict b e.Surrogate.Dataset_log.features))
    (synthetic_entries 8)

let test_model_checkpoint_roundtrip () =
  let entries = synthetic_entries 80 in
  let model = Surrogate.Model.create ~seed:7 () in
  ignore (Surrogate.Model.fit ~epochs:3 ~seed:7 model entries);
  let path = Filename.temp_file "surrogate_model" ".ckpt" in
  Surrogate.Model.save model ~path;
  (match Surrogate.Model.load ~path with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
      Array.iter
        (fun e ->
          check_bits "loaded predicts identically"
            (Surrogate.Model.predict model e.Surrogate.Dataset_log.features)
            (Surrogate.Model.predict loaded e.Surrogate.Dataset_log.features))
        (synthetic_entries 8));
  Util.Atomic_file.write_string ~path "surrogate-ckpt v999\n";
  (match Surrogate.Model.load ~path with
  | Ok _ -> Alcotest.fail "bad version: expected load error"
  | Error _ -> ());
  Sys.remove path

let test_model_predict_batch_matches () =
  let entries = synthetic_entries 40 in
  let model = Surrogate.Model.create ~seed:3 () in
  ignore (Surrogate.Model.fit ~epochs:2 ~seed:3 model entries);
  let xs =
    Array.map (fun e -> e.Surrogate.Dataset_log.features) (synthetic_entries 9)
  in
  let batched = Surrogate.Model.predict_batch model xs in
  Array.iteri
    (fun i x -> check_bits "batch = single" (Surrogate.Model.predict model x)
        batched.(i))
    xs

(* ------------------------------------------------------------------ *)
(* Ranker                                                             *)
(* ------------------------------------------------------------------ *)

let trained_model () =
  let model = Surrogate.Model.create ~seed:13 () in
  ignore (Surrogate.Model.fit ~epochs:2 ~seed:13 model (synthetic_entries 80));
  model

let test_ranker_batch_matches_single () =
  let model = trained_model () in
  let op = Linalg.matmul ~m:24 ~n:16 ~k:8 () in
  let scheds = Array.of_list sample_schedules in
  (* fresh rankers so neither path answers from the other's cache *)
  let single = Surrogate.Ranker.create ~machine model in
  let batch = Surrogate.Ranker.create ~machine model in
  let batched = Surrogate.Ranker.score_schedules batch op scheds in
  Array.iteri
    (fun i sched ->
      let s = Surrogate.Ranker.score_schedule single op sched in
      check "batch ~ single" true (Float.abs (s -. batched.(i)) < 1e-9))
    scheds

let test_ranker_cache_counters () =
  let model = trained_model () in
  let ranker = Surrogate.Ranker.create ~cache_capacity:4 ~machine model in
  let op = Linalg.matmul ~m:24 ~n:16 ~k:8 () in
  let scheds = Array.of_list sample_schedules in
  ignore (Surrogate.Ranker.score_schedules ranker op scheds);
  let s = Surrogate.Ranker.cache_stats ranker in
  check_int "all misses first pass" (Array.length scheds)
    s.Util.Sharded_cache.misses;
  check_int "bounded size" 4 s.Util.Sharded_cache.size;
  check_int "evictions" (Array.length scheds - 4) s.Util.Sharded_cache.evictions;
  (* the last-scored schedule is still resident *)
  let v = Surrogate.Ranker.score_schedule ranker op scheds.(5) in
  let s' = Surrogate.Ranker.cache_stats ranker in
  check_int "cache hit" 1 s'.Util.Sharded_cache.hits;
  check "hit returns a finite score" true (Float.is_finite v)

let test_ranker_attaches_to_evaluator () =
  let model = trained_model () in
  let ranker = Surrogate.Ranker.create ~machine model in
  let ev = Evaluator.create () in
  check "no surrogate group before attach" true
    ((Evaluator.cache_stats ev).Evaluator.surrogate = None);
  Surrogate.Ranker.attach ranker ev;
  let op = Linalg.matmul ~m:24 ~n:16 ~k:8 () in
  ignore
    (Surrogate.Ranker.score_schedules ranker op (Array.of_list sample_schedules));
  (match (Evaluator.cache_stats ev).Evaluator.surrogate with
  | None -> Alcotest.fail "surrogate group missing after attach"
  | Some s ->
      check "live counters" true (s.Util.Sharded_cache.misses > 0));
  let groups = Evaluator.cache_stats_groups (Evaluator.cache_stats ev) in
  check "rendered in unified groups" true (List.mem_assoc "surrogate" groups)

(* ------------------------------------------------------------------ *)
(* Staged search                                                      *)
(* ------------------------------------------------------------------ *)

let fingerprint (r : Auto_scheduler.result) =
  Printf.sprintf "%s|%.17g|%d"
    (Schedule.to_string r.Auto_scheduler.best_schedule)
    r.Auto_scheduler.best_speedup r.Auto_scheduler.explored

let test_staged_fallback_identical () =
  (* No ranker, no checkpoint: search_staged must be the exact search,
     byte for byte — exhaustive and sampled regimes both. *)
  List.iter
    (fun (op, budget) ->
      let config =
        {
          Auto_scheduler.default_config with
          Auto_scheduler.max_schedules = budget;
        }
      in
      let a = Auto_scheduler.search ~config (Evaluator.create ()) op in
      let b = Auto_scheduler.search_staged ~config (Evaluator.create ()) op in
      check_str "byte-identical fallback" (fingerprint a) (fingerprint b))
    [
      (Linalg.matmul ~m:16 ~n:16 ~k:16 (), 400);
      (Linalg.matmul ~m:48 ~n:48 ~k:48 (), 200) (* sampled: space > budget *);
    ]

let test_staged_full_rerank_recovers_exact () =
  (* A constant (useless) ranker with a re-rank budget covering every
     candidate must still find the exact optimum: ranking only orders,
     it never discards below rerank_k. *)
  let op = Linalg.matmul ~m:16 ~n:16 ~k:16 () in
  let config =
    { Auto_scheduler.default_config with Auto_scheduler.max_schedules = 400 }
  in
  let exact = Auto_scheduler.search ~config (Evaluator.create ()) op in
  let staged =
    Auto_scheduler.search_staged ~config
      ~ranker:(fun scheds -> Array.make (Array.length scheds) 0.0)
      ~rerank_k:max_int (Evaluator.create ()) op
  in
  check_bits "same best speedup" exact.Auto_scheduler.best_speedup
    staged.Auto_scheduler.best_speedup;
  check_str "same best schedule"
    (Schedule.to_string exact.Auto_scheduler.best_schedule)
    (Schedule.to_string staged.Auto_scheduler.best_schedule)

let test_staged_real_ranker_budgeted () =
  let model = trained_model () in
  let op = Linalg.matmul ~m:16 ~n:16 ~k:16 () in
  let ranker = Surrogate.Ranker.create ~machine model in
  let config =
    { Auto_scheduler.default_config with Auto_scheduler.max_schedules = 400 }
  in
  let r =
    Auto_scheduler.search_staged ~config
      ~ranker:(Surrogate.Ranker.schedule_scorer ranker op)
      ~rerank_k:32 (Evaluator.create ()) op
  in
  check "exact evals bounded by rerank_k (+trivial)" true
    (r.Auto_scheduler.explored <= 33);
  check "found a speedup" true (r.Auto_scheduler.best_speedup >= 1.0);
  match Sched_state.apply_all op r.Auto_scheduler.best_schedule with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "staged best schedule does not apply: %s" e

let test_beam_staged () =
  let model = trained_model () in
  let op = Linalg.matmul ~m:16 ~n:16 ~k:16 () in
  let ranker = Surrogate.Ranker.create ~machine model in
  let exact = Beam_search.search (Evaluator.create ()) op in
  let staged =
    Beam_search.search
      ~ranker:(Surrogate.Ranker.state_scorer ranker)
      ~rerank_k:8 (Evaluator.create ()) op
  in
  check "staged beam explores no more exactly" true
    (staged.Beam_search.explored <= exact.Beam_search.explored);
  check "staged beam finds a speedup" true
    (staged.Beam_search.best_speedup >= 1.0);
  check "ends with vectorize" true
    (List.mem Schedule.Vectorize staged.Beam_search.best_schedule)

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  Surrogate.Counters.reset ();
  Surrogate.Counters.add_scored 5;
  Surrogate.Counters.add_reranked 3;
  Surrogate.Counters.incr_searches ();
  let s = Surrogate.Counters.stats () in
  check_int "scored" 5 s.Surrogate.Counters.scored;
  check_int "reranked" 3 s.Surrogate.Counters.reranked;
  check_int "searches" 1 s.Surrogate.Counters.searches;
  Surrogate.Counters.reset ();
  let z = Surrogate.Counters.stats () in
  check_int "reset scored" 0 z.Surrogate.Counters.scored;
  check_int "reset reranked" 0 z.Surrogate.Counters.reranked;
  check_int "reset searches" 0 z.Surrogate.Counters.searches

let suite =
  [
    Alcotest.test_case "features: widths and determinism" `Quick
      test_feature_widths;
    Alcotest.test_case "features: schedule_block_into overwrites" `Quick
      test_schedule_block_into_matches;
    Alcotest.test_case "features: of_state = of_schedule" `Quick
      test_of_state_matches_of_schedule;
    Alcotest.test_case "features: op-block cache" `Quick test_op_block_cache;
    Alcotest.test_case "schedule: dedup_key injective" `Quick
      test_dedup_key_injective;
    Alcotest.test_case "log: dedup and rotation" `Quick
      test_log_dedup_and_rotation;
    Alcotest.test_case "log: save/load exact roundtrip" `Quick
      test_log_save_load_roundtrip;
    Alcotest.test_case "log: save merges with file" `Quick test_log_save_merge;
    Alcotest.test_case "log: load rejects garbage" `Quick
      test_log_load_rejects_garbage;
    Alcotest.test_case "log: evaluator tap" `Quick test_log_evaluator_tap;
    Alcotest.test_case "model: fit decreases val loss" `Quick
      test_model_fit_decreases_val_loss;
    Alcotest.test_case "model: fit deterministic" `Quick
      test_model_fit_deterministic;
    Alcotest.test_case "model: checkpoint roundtrip" `Quick
      test_model_checkpoint_roundtrip;
    Alcotest.test_case "model: predict_batch = predict" `Quick
      test_model_predict_batch_matches;
    Alcotest.test_case "ranker: batch = single" `Quick
      test_ranker_batch_matches_single;
    Alcotest.test_case "ranker: cache counters" `Quick
      test_ranker_cache_counters;
    Alcotest.test_case "ranker: evaluator attach" `Quick
      test_ranker_attaches_to_evaluator;
    Alcotest.test_case "staged: fallback byte-identical" `Quick
      test_staged_fallback_identical;
    Alcotest.test_case "staged: full rerank recovers exact" `Quick
      test_staged_full_rerank_recovers_exact;
    Alcotest.test_case "staged: budgeted real ranker" `Quick
      test_staged_real_ranker_budgeted;
    Alcotest.test_case "staged: beam search" `Quick test_beam_staged;
    Alcotest.test_case "counters" `Quick test_counters;
  ]
