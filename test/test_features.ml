(* Observation feature toggles (the ablation's plumbing). *)

let base_cfg = Env_config.default
let all = Env_config.all_features

let obs_with features op =
  let cfg = { base_cfg with Env_config.features } in
  Observation.extract cfg (Sched_state.init op)

let test_length_unchanged () =
  let op = Test_helpers.small_conv () in
  let full = obs_with all op in
  let stripped =
    obs_with { all with Env_config.use_history = false;
               Env_config.use_access_matrices = false } op
  in
  Alcotest.(check int) "same length" (Array.length full) (Array.length stripped)

let block_ranges cfg =
  let n = cfg.Env_config.n_max in
  let m = cfg.Env_config.d_max * (n + 1) in
  let loop_info = (0, n) in
  let matrices = (n, (cfg.Env_config.l_max + 1) * m) in
  let counts = (n + ((cfg.Env_config.l_max + 1) * m), 6) in
  let history =
    (n + ((cfg.Env_config.l_max + 1) * m) + 6, n * 3 * cfg.Env_config.tau)
  in
  (loop_info, matrices, counts, history)

let all_zero arr (off, len) =
  Array.for_all (fun i -> arr.(off + i) = 0.0) (Array.init len (fun i -> i))

let some_nonzero arr (off, len) = not (all_zero arr (off, len))

let test_history_zeroed () =
  let op = Test_helpers.small_matmul () in
  let cfg = base_cfg in
  let _, _, _, history = block_ranges cfg in
  let st =
    Result.get_ok (Sched_state.apply_all op [ Schedule.Tile [| 4; 4; 4 |] ])
  in
  let full = Observation.extract cfg st in
  Alcotest.(check bool) "full has history" true (some_nonzero full history);
  let stripped =
    Observation.extract
      { cfg with Env_config.features = { all with Env_config.use_history = false } }
      st
  in
  Alcotest.(check bool) "stripped history zero" true (all_zero stripped history)

let test_matrices_zeroed () =
  let op = Test_helpers.small_matmul () in
  let cfg = base_cfg in
  let _, matrices, _, _ = block_ranges cfg in
  let st = Sched_state.init op in
  let full = Observation.extract cfg st in
  Alcotest.(check bool) "full has matrices" true (some_nonzero full matrices);
  let stripped =
    Observation.extract
      { cfg with
        Env_config.features = { all with Env_config.use_access_matrices = false } }
      st
  in
  Alcotest.(check bool) "stripped matrices zero" true (all_zero stripped matrices)

let test_loop_info_zeroed () =
  let op = Test_helpers.small_matmul () in
  let cfg = base_cfg in
  let loop_info, _, _, _ = block_ranges cfg in
  let st = Sched_state.init op in
  let stripped =
    Observation.extract
      { cfg with Env_config.features = { all with Env_config.use_loop_info = false } }
      st
  in
  Alcotest.(check bool) "loop info zero" true (all_zero stripped loop_info);
  let full = Observation.extract cfg st in
  Alcotest.(check bool) "full loop info nonzero" true (some_nonzero full loop_info)

let test_counts_zeroed () =
  let op = Test_helpers.small_matmul () in
  let cfg = base_cfg in
  let _, _, counts, _ = block_ranges cfg in
  let stripped =
    Observation.extract
      { cfg with
        Env_config.features = { all with Env_config.use_math_counts = false } }
      (Sched_state.init op)
  in
  Alcotest.(check bool) "counts zero" true (all_zero stripped counts)

let test_env_trains_with_ablated_features () =
  (* Smoke: the trainer runs with a stripped observation. *)
  let cfg =
    { base_cfg with Env_config.features = { all with Env_config.use_history = false } }
  in
  let env = Env.create cfg in
  let rng = Util.Rng.create 17 in
  let policy = Policy.create ~hidden:8 ~backbone_layers:1 rng cfg in
  let config = { Trainer.default_config with Trainer.iterations = 1; seed = 1 } in
  let stats =
    Trainer.train config env policy ~ops:[| Linalg.matmul ~m:64 ~n:64 ~k:64 () |]
  in
  Alcotest.(check int) "ran" 1 (List.length stats)

let suite =
  [
    Alcotest.test_case "length unchanged" `Quick test_length_unchanged;
    Alcotest.test_case "history zeroed" `Quick test_history_zeroed;
    Alcotest.test_case "matrices zeroed" `Quick test_matrices_zeroed;
    Alcotest.test_case "loop info zeroed" `Quick test_loop_info_zeroed;
    Alcotest.test_case "counts zeroed" `Quick test_counts_zeroed;
    Alcotest.test_case "trains with ablated features" `Quick
      test_env_trains_with_ablated_features;
  ]
