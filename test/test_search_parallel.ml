(* The multicore search engine's contracts: the work-stealing pool, the
   sharded-cache observability additions (contention counter,
   shard_stats, to_alist), byte-identity of exhaustive / sampled /
   staged / beam search across --jobs values (including the noisy-
   evaluator variant and the im2col conv path), per-domain workspace
   isolation under concurrent batched inference, and the dataset-log
   tap under parallel search. *)

(* ------------------------------------------------------------------ *)
(* Work-stealing pool                                                  *)

let test_steal_pool_map_array () =
  let pool = Util.Domain_pool.create_stealing ~size:3 in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "stealing flag" true (Util.Domain_pool.stealing pool);
      Alcotest.(check bool)
        "fifo pool is not stealing" false
        (let p = Util.Domain_pool.create ~size:1 in
         let s = Util.Domain_pool.stealing p in
         Util.Domain_pool.shutdown p;
         s);
      let out =
        Util.Domain_pool.map_array pool (fun x -> x * x)
          (Array.init 100 (fun i -> i))
      in
      Array.iteri
        (fun i v -> Alcotest.(check int) (Printf.sprintf "elt %d" i) (i * i) v)
        out)

let test_steal_pool_irregular () =
  (* Tasks spanning four orders of magnitude of work: whatever worker
     draws the big ones, every result must still come back in order and
     correct — the stealing path's bread and butter. *)
  let pool = Util.Domain_pool.create_stealing ~size:4 in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () ->
      let work n =
        let acc = ref 0 in
        for k = 1 to n do
          acc := !acc + (k mod 7)
        done;
        !acc
      in
      let sizes = Array.init 200 (fun i -> if i mod 17 = 0 then 200_000 else 50) in
      let out = Util.Domain_pool.map_array pool work sizes in
      Array.iteri
        (fun i v ->
          Alcotest.(check int) (Printf.sprintf "task %d" i) (work sizes.(i)) v)
        out)

let test_steal_pool_exceptions () =
  let pool = Util.Domain_pool.create_stealing ~size:2 in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () ->
      let bad = Util.Domain_pool.submit pool (fun () -> failwith "boom") in
      Alcotest.check_raises "worker exception re-raised" (Failure "boom")
        (fun () -> ignore (Util.Domain_pool.await bad));
      let good = Util.Domain_pool.submit pool (fun () -> "alive") in
      Alcotest.(check string) "worker survived" "alive"
        (Util.Domain_pool.await good))

let test_steal_pool_shutdown () =
  let pool = Util.Domain_pool.create_stealing ~size:2 in
  let p = Util.Domain_pool.submit pool (fun () -> 41 + 1) in
  Alcotest.(check int) "queued task ran" 42 (Util.Domain_pool.await p);
  Util.Domain_pool.shutdown pool;
  Util.Domain_pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Domain_pool.submit: pool is shut down") (fun () ->
      ignore (Util.Domain_pool.submit pool (fun () -> 0)))

(* ------------------------------------------------------------------ *)
(* Sharded cache: contention counter, shard_stats, to_alist            *)

let test_cache_contention_single_domain_zero () =
  let c = Util.Sharded_cache.create ~shards:2 ~capacity:64 () in
  for i = 0 to 999 do
    ignore
      (Util.Sharded_cache.find_or_compute c (string_of_int (i mod 80)) (fun () -> i))
  done;
  let s = Util.Sharded_cache.stats c in
  Alcotest.(check int) "uncontended single-domain" 0
    s.Util.Sharded_cache.contention

let test_cache_contention_counted () =
  (* One shard, four domains in tight loops on it: try_lock must fail
     at least once in some round. Retrying rounds keeps the test
     deterministic-enough without sleeping in the hot path. *)
  let rec round n =
    if n = 0 then 0
    else begin
      let c = Util.Sharded_cache.create ~shards:1 ~capacity:64 () in
      let worker w () =
        for i = 0 to 20_000 do
          ignore
            (Util.Sharded_cache.find_or_compute c
               (string_of_int ((i + w) mod 32))
               (fun () -> i))
        done
      in
      let domains = Array.init 4 (fun w -> Domain.spawn (worker w)) in
      Array.iter Domain.join domains;
      let s = Util.Sharded_cache.stats c in
      if s.Util.Sharded_cache.contention > 0 then
        s.Util.Sharded_cache.contention
      else round (n - 1)
    end
  in
  Alcotest.(check bool) "contention observed" true (round 50 > 0)

let test_cache_shard_stats_and_to_alist () =
  let shards = 4 in
  let c = Util.Sharded_cache.create ~shards ~capacity:1024 () in
  for i = 0 to 99 do
    Util.Sharded_cache.add c (string_of_int i) (i * 3)
  done;
  ignore (Util.Sharded_cache.find_opt c "0");
  ignore (Util.Sharded_cache.find_opt c "no-such-key");
  let agg = Util.Sharded_cache.stats c in
  let per = Util.Sharded_cache.shard_stats c in
  Alcotest.(check int) "one entry per shard" shards (Array.length per);
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 per in
  Alcotest.(check int) "hits sum" agg.Util.Sharded_cache.hits
    (sum (fun s -> s.Util.Sharded_cache.hits));
  Alcotest.(check int) "misses sum" agg.Util.Sharded_cache.misses
    (sum (fun s -> s.Util.Sharded_cache.misses));
  Alcotest.(check int) "size sum" agg.Util.Sharded_cache.size
    (sum (fun s -> s.Util.Sharded_cache.size));
  Array.iter
    (fun s -> Alcotest.(check int) "per-shard view" 1 s.Util.Sharded_cache.shards)
    per;
  let alist = Util.Sharded_cache.to_alist c in
  Alcotest.(check int) "to_alist length" 100 (List.length alist);
  List.iter
    (fun (k, v) ->
      Alcotest.(check int) (Printf.sprintf "key %s" k) (int_of_string k * 3) v)
    alist

(* ------------------------------------------------------------------ *)
(* Search byte-identity across jobs                                    *)

let result_key (r : Auto_scheduler.result) =
  Printf.sprintf "%s|%.17g|%d|%s"
    (Schedule.to_string r.Auto_scheduler.best_schedule)
    r.Auto_scheduler.best_speedup r.Auto_scheduler.explored
    (String.concat ";"
       (Array.to_list
          (Array.map
             (fun (i, s) -> Printf.sprintf "%d:%.17g" i s)
             r.Auto_scheduler.trace)))

let beam_key (r : Beam_search.result) =
  Printf.sprintf "%s|%.17g|%d"
    (Schedule.to_string r.Beam_search.best_schedule)
    r.Beam_search.best_speedup r.Beam_search.explored

(* Deterministic stand-in for a trained surrogate: exercises the staged
   plumbing (batched aggregation, tie-breaking, parallel rerank) with
   no checkpoint on disk. *)
let pseudo_schedule_ranker scheds =
  Array.map
    (fun s -> float_of_int (Hashtbl.hash (Schedule.dedup_key s) land 0xffff))
    scheds

let pseudo_state_ranker states =
  Array.map
    (fun (st : Sched_state.t) ->
      float_of_int
        (Hashtbl.hash (Schedule.dedup_key st.Sched_state.applied) land 0xffff))
    states

let exhaustive_op () = Test_helpers.small_matmul ()
let sampled_op () = Linalg.matmul ~m:64 ~n:64 ~k:64 ()

(* A budget sure to put the op on the full-enumeration branch: the
   dispatch compares [space_total] (a pre-filter upper bound, larger
   than the actual candidate count) against the budget. small_matmul
   enumerates 3649 candidates; tiny_conv below 1991. *)
let exhaustive_budget op =
  Auto_scheduler.space_total Auto_scheduler.default_config op + 1

(* Small enough that the conv/im2col frontier enumerates fully. *)
let tiny_conv () =
  Linalg.conv2d
    {
      Linalg.batch = 1;
      in_h = 5;
      in_w = 5;
      channels = 1;
      kernel_h = 3;
      kernel_w = 3;
      filters = 2;
      stride = 1;
    }

let check_search_identity ~name ?noise ~budget ~expect_exhaustive op =
  let config =
    { Auto_scheduler.default_config with Auto_scheduler.max_schedules = budget }
  in
  Alcotest.(check bool)
    (name ^ ": search branch as intended")
    expect_exhaustive
    (Auto_scheduler.space_total config op <= budget);
  let run jobs =
    let ev =
      match noise with
      | None -> Evaluator.create ()
      | Some sigma -> Evaluator.create ~noise:sigma ~noise_seed:9 ()
    in
    let r = Auto_scheduler.search ~config ~jobs ev op in
    (result_key r, Evaluator.explored ev, Evaluator.cache_stats ev)
  in
  match noise with
  | None ->
      let k1, e1, c1 = run 1 in
      List.iter
        (fun jobs ->
          let k, e, c = run jobs in
          Alcotest.(check string)
            (Printf.sprintf "%s: jobs %d = jobs 1" name jobs)
            k1 k;
          Alcotest.(check int)
            (Printf.sprintf "%s: evaluator explored merged (jobs %d)" name jobs)
            e1 e;
          (* Cache-level identity: every candidate does exactly one
             state-cache lookup, and the distinct-key set is the same —
             only the hit/miss split may shift when racing misses
             compute the same (pure) value twice. *)
          match (c1.Evaluator.state, c.Evaluator.state) with
          | Some s1, Some s ->
              Alcotest.(check int)
                (Printf.sprintf "%s: state-cache lookups (jobs %d)" name jobs)
                (s1.Util.Sharded_cache.hits + s1.Util.Sharded_cache.misses)
                (s.Util.Sharded_cache.hits + s.Util.Sharded_cache.misses);
              Alcotest.(check int)
                (Printf.sprintf "%s: state-cache keys (jobs %d)" name jobs)
                s1.Util.Sharded_cache.size s.Util.Sharded_cache.size
          | _ -> Alcotest.fail "state cache unexpectedly disabled")
        [ 2; 4 ]
  | Some _ ->
      (* With jitter the parallel runs use candidate-indexed streams:
         all jobs >= 2 agree with each other (not with jobs 1). *)
      let k2, _, _ = run 2 in
      let k4, _, _ = run 4 in
      Alcotest.(check string) (name ^ ": noisy jobs 2 = jobs 4") k2 k4

let test_search_exhaustive_identity () =
  let op = exhaustive_op () in
  check_search_identity ~name:"exhaustive" ~budget:(exhaustive_budget op)
    ~expect_exhaustive:true op

let test_search_sampled_identity () =
  check_search_identity ~name:"sampled" ~budget:250 ~expect_exhaustive:false
    (sampled_op ())

let test_search_conv_identity () =
  (* The conv path adds the im2col prefixed space to the frontier. *)
  let op = tiny_conv () in
  check_search_identity ~name:"conv+im2col" ~budget:(exhaustive_budget op)
    ~expect_exhaustive:true op

let test_search_noisy_parallel_identity () =
  let op = exhaustive_op () in
  check_search_identity ~name:"noisy exhaustive" ~noise:0.05
    ~budget:(exhaustive_budget op) ~expect_exhaustive:true op

let test_search_frontier_depths_agree () =
  let op = exhaustive_op () in
  let config =
    {
      Auto_scheduler.default_config with
      Auto_scheduler.max_schedules = exhaustive_budget op;
    }
  in
  let base =
    result_key (Auto_scheduler.search ~config (Evaluator.create ()) op)
  in
  List.iter
    (fun frontier_depth ->
      let r =
        Auto_scheduler.search ~config ~jobs:2 ~frontier_depth
          (Evaluator.create ()) op
      in
      Alcotest.(check string)
        (Printf.sprintf "frontier depth %d" frontier_depth)
        base (result_key r))
    [ 0; 1; 3; 8 ]

let test_search_pool_reuse () =
  (* A caller-owned stealing pool shared by consecutive searches, one
     exhaustive and one sampled. *)
  let config =
    {
      Auto_scheduler.default_config with
      Auto_scheduler.max_schedules = exhaustive_budget (exhaustive_op ());
    }
  in
  let pool = Util.Domain_pool.create_stealing ~size:3 in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () ->
      List.iter
        (fun op ->
          let seq =
            result_key (Auto_scheduler.search ~config (Evaluator.create ()) op)
          in
          let par =
            result_key
              (Auto_scheduler.search ~config ~pool (Evaluator.create ()) op)
          in
          Alcotest.(check string) "pooled = sequential" seq par)
        [ exhaustive_op (); sampled_op () ])

let test_search_staged_identity () =
  let op = exhaustive_op () in
  let config = Auto_scheduler.default_config in
  let run jobs =
    let ev = Evaluator.create () in
    result_key
      (Auto_scheduler.search_staged ~config ~ranker:pseudo_schedule_ranker
         ~rerank_k:24 ~jobs ev op)
  in
  let k1 = run 1 in
  Alcotest.(check string) "staged jobs 2" k1 (run 2);
  Alcotest.(check string) "staged jobs 4" k1 (run 4)

let test_search_jobs_validated () =
  Alcotest.check_raises "jobs 0 rejected"
    (Invalid_argument "Auto_scheduler.search: jobs must be >= 1") (fun () ->
      ignore (Auto_scheduler.search ~jobs:0 (Evaluator.create ()) (exhaustive_op ())));
  Alcotest.check_raises "beam jobs 0 rejected"
    (Invalid_argument "Beam_search.search: jobs must be >= 1") (fun () ->
      ignore (Beam_search.search ~jobs:0 (Evaluator.create ()) (exhaustive_op ())))

(* ------------------------------------------------------------------ *)
(* Beam search identity                                                *)

let test_beam_identity () =
  List.iter
    (fun op ->
      let run jobs =
        let ev = Evaluator.create () in
        let r = Beam_search.search ~jobs ev op in
        (beam_key r, Evaluator.explored ev)
      in
      let k1, e1 = run 1 in
      List.iter
        (fun jobs ->
          let k, e = run jobs in
          Alcotest.(check string) (Printf.sprintf "beam jobs %d" jobs) k1 k;
          Alcotest.(check int)
            (Printf.sprintf "beam explored merged (jobs %d)" jobs)
            e1 e)
        [ 2; 4 ])
    [ exhaustive_op (); Test_helpers.small_conv () ]

let test_beam_ranked_identity () =
  let op = exhaustive_op () in
  let run jobs =
    beam_key
      (Beam_search.search ~ranker:pseudo_state_ranker ~rerank_k:12 ~jobs
         (Evaluator.create ()) op)
  in
  let k1 = run 1 in
  Alcotest.(check string) "ranked beam jobs 2" k1 (run 2);
  Alcotest.(check string) "ranked beam jobs 4" k1 (run 4)

let test_beam_noisy_parallel_identity () =
  let op = exhaustive_op () in
  let run jobs =
    beam_key
      (Beam_search.search ~jobs (Evaluator.create ~noise:0.05 ~noise_seed:4 ()) op)
  in
  Alcotest.(check string) "noisy beam jobs 2 = jobs 4" (run 2) (run 4)

(* ------------------------------------------------------------------ *)
(* Per-domain workspace isolation                                      *)

let test_workspace_isolation () =
  (* Four domains drive batched greedy inference through ONE policy
     (Domain.DLS gives each domain its own tensor workspaces): every
     concurrent result must equal the sequential one. *)
  let cfg = Env_config.default in
  let policy =
    Policy.create ~hidden:16 ~backbone_layers:2 (Util.Rng.create 7) cfg
  in
  let states =
    [|
      Sched_state.init (Linalg.matmul ~m:64 ~n:64 ~k:64 ());
      Sched_state.init (Linalg.matmul ~m:8 ~n:12 ~k:16 ());
      Sched_state.init (Linalg.add [| 32; 32 |]);
    |]
  in
  let obs = Array.map (Observation.extract cfg) states in
  let masks = Array.map (Action_space.masks cfg) states in
  let expected = Policy.act_greedy_batch policy ~obs ~masks in
  let pool = Util.Domain_pool.create_stealing ~size:4 in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () ->
      let rounds =
        Util.Domain_pool.map_array pool
          (fun _ -> Policy.act_greedy_batch policy ~obs ~masks)
          (Array.init 16 (fun i -> i))
      in
      Array.iteri
        (fun r actions ->
          Alcotest.(check bool)
            (Printf.sprintf "round %d matches sequential" r)
            true (actions = expected))
        rounds)

(* ------------------------------------------------------------------ *)
(* Dataset log under concurrency                                       *)

let test_dataset_log_concurrent_adds () =
  (* Four domains add overlapping key ranges: no lost rows, no torn
     rows, dedup exact. *)
  let log = Surrogate.Dataset_log.create ~capacity:100_000 () in
  let features_of i = Array.init Surrogate.Features.dim (fun j -> float_of_int (i + j)) in
  let per_domain = 2_000 in
  let worker w () =
    for i = 0 to per_domain - 1 do
      let key = (i + (w * 500)) mod 3_000 in
      ignore
        (Surrogate.Dataset_log.add log
           {
             Surrogate.Dataset_log.digest = Printf.sprintf "d-%d" key;
             machine = "m";
             seconds = float_of_int key;
             features = features_of key;
           })
    done
  in
  let domains = Array.init 4 (fun w -> Domain.spawn (worker w)) in
  Array.iter Domain.join domains;
  let s = Surrogate.Dataset_log.stats log in
  Alcotest.(check int) "every add accounted" (4 * per_domain)
    (s.Surrogate.Dataset_log.added + s.Surrogate.Dataset_log.duplicates);
  Alcotest.(check int) "size = added (no rotation)" s.Surrogate.Dataset_log.added
    s.Surrogate.Dataset_log.size;
  let entries = Surrogate.Dataset_log.entries log in
  Alcotest.(check int) "snapshot length" s.Surrogate.Dataset_log.size
    (Array.length entries);
  let seen = Hashtbl.create 1024 in
  Array.iter
    (fun (e : Surrogate.Dataset_log.entry) ->
      Alcotest.(check bool) "no duplicate row" false (Hashtbl.mem seen e.digest);
      Hashtbl.add seen e.digest ();
      (* Torn-row check: the row's payload must be the one its key was
         written with, not a mix of two writers. *)
      let key = int_of_string (String.sub e.digest 2 (String.length e.digest - 2)) in
      Alcotest.(check (float 0.0)) "seconds intact" (float_of_int key) e.seconds;
      Alcotest.(check bool) "features intact" true (e.features = features_of key))
    entries

let test_dataset_log_parallel_search_tap () =
  (* The measurement tap fires from forked evaluators on pool domains;
     the collected log must match the sequential run's row for row
     (order aside). *)
  let collect jobs =
    let ev = Evaluator.create () in
    let log = Surrogate.Dataset_log.create () in
    Surrogate.Dataset_log.attach log ev;
    ignore (Auto_scheduler.search ~jobs ev (exhaustive_op ()));
    let rows =
      Array.to_list
        (Array.map
           (fun (e : Surrogate.Dataset_log.entry) ->
             Printf.sprintf "%s|%s|%h" e.digest e.machine e.seconds)
           (Surrogate.Dataset_log.entries log))
    in
    List.sort compare rows
  in
  let seq = collect 1 in
  Alcotest.(check bool) "log non-empty" true (seq <> []);
  Alcotest.(check (list string)) "jobs 4 log = jobs 1 log" seq (collect 4)

let suite =
  [
    Alcotest.test_case "steal pool: map_array ordered" `Quick
      test_steal_pool_map_array;
    Alcotest.test_case "steal pool: irregular task stress" `Slow
      test_steal_pool_irregular;
    Alcotest.test_case "steal pool: exception propagation" `Quick
      test_steal_pool_exceptions;
    Alcotest.test_case "steal pool: shutdown idempotent" `Quick
      test_steal_pool_shutdown;
    Alcotest.test_case "cache: single-domain contention is zero" `Quick
      test_cache_contention_single_domain_zero;
    Alcotest.test_case "cache: contention counted under domains" `Slow
      test_cache_contention_counted;
    Alcotest.test_case "cache: shard_stats and to_alist" `Quick
      test_cache_shard_stats_and_to_alist;
    Alcotest.test_case "search: exhaustive identity jobs 1/2/4" `Slow
      test_search_exhaustive_identity;
    Alcotest.test_case "search: sampled identity jobs 1/2/4" `Slow
      test_search_sampled_identity;
    Alcotest.test_case "search: conv im2col identity" `Slow
      test_search_conv_identity;
    Alcotest.test_case "search: noisy jobs 2 = jobs 4" `Slow
      test_search_noisy_parallel_identity;
    Alcotest.test_case "search: frontier depths agree" `Slow
      test_search_frontier_depths_agree;
    Alcotest.test_case "search: caller-owned pool reuse" `Slow
      test_search_pool_reuse;
    Alcotest.test_case "search: staged identity jobs 1/2/4" `Slow
      test_search_staged_identity;
    Alcotest.test_case "search: jobs < 1 rejected" `Quick
      test_search_jobs_validated;
    Alcotest.test_case "beam: identity jobs 1/2/4" `Slow test_beam_identity;
    Alcotest.test_case "beam: ranked identity jobs 1/2/4" `Slow
      test_beam_ranked_identity;
    Alcotest.test_case "beam: noisy jobs 2 = jobs 4" `Slow
      test_beam_noisy_parallel_identity;
    Alcotest.test_case "workspace isolation under concurrent inference" `Slow
      test_workspace_isolation;
    Alcotest.test_case "dataset log: concurrent adds" `Slow
      test_dataset_log_concurrent_adds;
    Alcotest.test_case "dataset log: parallel search tap" `Slow
      test_dataset_log_parallel_search_tap;
  ]
