(* Crash-recoverable training: checkpoint save/restore roundtrips, and
   the determinism guarantee — k iterations + resume for the rest must
   reproduce an uninterrupted run bit for bit, with and without an
   injected-fault backend. *)

let tmp_prefix name =
  Filename.concat (Filename.get_temp_dir_name ()) ("mlir_rl_ckpt_" ^ name)

let cleanup path =
  List.iter
    (fun ext -> try Sys.remove (path ^ ext) with Sys_error _ -> ())
    [ ".meta"; ".params"; ".optim" ]

let small_ops = [| Linalg.matmul ~m:8 ~n:12 ~k:16 (); Linalg.add [| 32; 32 |] |]

let train_config ?checkpoint_path ?(checkpoint_every = 2) ~iterations () =
  {
    Trainer.default_config with
    Trainer.iterations;
    seed = 42;
    checkpoint_path;
    checkpoint_every;
  }

let fresh_setup ?(faults = false) () =
  let cfg = Env_config.default in
  let env =
    if faults then begin
      let f = Faults.create ~config:(Faults.flaky ~rate:0.15 ()) ~seed:8 () in
      let robust = Robust_evaluator.create ~faults:f (Evaluator.create ()) in
      Env.create ~robust cfg
    end
    else Env.create cfg
  in
  let policy = Policy.create ~hidden:8 ~backbone_layers:1 (Util.Rng.create 42) cfg in
  (env, policy)

let stats_key (s : Trainer.iteration_stats) =
  Printf.sprintf "%d %.9e %.9e %.9e %.9e %d %d" s.Trainer.iteration
    s.Trainer.mean_episode_return s.Trainer.mean_final_speedup
    s.Trainer.best_speedup s.Trainer.measurement_seconds
    s.Trainer.schedules_explored s.Trainer.degraded_measurements

let copy_weights params =
  List.map (fun (p : Autodiff.Param.t) -> Tensor.copy p.Autodiff.Param.data) params

let restore_weights params snapshot =
  List.iter2
    (fun (p : Autodiff.Param.t) snap ->
      for i = 0 to Tensor.numel snap - 1 do
        Tensor.set p.Autodiff.Param.data i (Tensor.get snap i)
      done)
    params snapshot

let weights_equal a b =
  List.for_all2
    (fun x y ->
      let n = Tensor.numel x in
      let ok = ref (n = Tensor.numel y) in
      for i = 0 to n - 1 do
        if Tensor.get x i <> Tensor.get y i then ok := false
      done;
      !ok)
    a b

let test_meta_roundtrip () =
  let path = tmp_prefix "meta" in
  let cfg = Env_config.default in
  let policy = Policy.create ~hidden:8 ~backbone_layers:1 (Util.Rng.create 1) cfg in
  let params = Policy.params policy in
  let optimizer = Optim.adam ~lr:1e-3 params in
  let meta =
    {
      Checkpoint.iteration = 7;
      rng_state = 0xdeadbeefL;
      episodes = 58;
      best_speedup = 12.5;
      measurement_seconds = 321.75;
      explored = 99;
      degraded = 3;
      noise_state = -1L;
      fault_state = Some (42L, 17);
    }
  in
  Checkpoint.save ~path meta ~params ~optimizer;
  Alcotest.(check bool) "exists" true (Checkpoint.exists ~path);
  (match Checkpoint.load_meta ~path with
  | Error e -> Alcotest.fail e
  | Ok m -> Alcotest.(check bool) "meta roundtrips" true (m = meta));
  cleanup path

let test_restore_rejects_garbage () =
  let path = tmp_prefix "garbage" in
  let oc = open_out (path ^ ".meta") in
  output_string oc "not a checkpoint\n";
  close_out oc;
  Alcotest.(check bool) "corrupt meta rejected" true
    (Result.is_error (Checkpoint.load_meta ~path));
  cleanup path

let test_optim_state_roundtrip () =
  (* Take two Adam steps, save; a third step from the saved point must
     land on the same weights whether the moments come from memory or
     from the reloaded file. *)
  let path = tmp_prefix "optim" ^ ".optim" in
  let cfg = Env_config.default in
  let policy = Policy.create ~hidden:8 ~backbone_layers:1 (Util.Rng.create 5) cfg in
  let params = Policy.params policy in
  let optimizer = Optim.adam ~lr:1e-2 params in
  let poke () =
    List.iter
      (fun (p : Autodiff.Param.t) ->
        let g = p.Autodiff.Param.grad in
        for i = 0 to Tensor.numel g - 1 do
          Tensor.set g i 0.01
        done)
      params;
    Optim.step optimizer
  in
  poke ();
  poke ();
  Optim.save optimizer path;
  let w2 = copy_weights params in
  poke ();
  let expected = copy_weights params in
  restore_weights params w2;
  (match Optim.load optimizer path with Error e -> Alcotest.fail e | Ok () -> ());
  poke ();
  Alcotest.(check bool) "third step reproduced after reload" true
    (weights_equal expected (copy_weights params));
  Sys.remove path

let run_straight ?(faults = false) ~iterations () =
  let env, policy = fresh_setup ~faults () in
  let stats =
    Trainer.train (train_config ~iterations ()) env policy ~ops:small_ops
  in
  (List.map stats_key stats, Policy.params policy)

let run_interrupted ?(faults = false) ~iterations ~kill_after () =
  let path = tmp_prefix (if faults then "resume_f" else "resume") in
  cleanup path;
  (* Phase 1: train kill_after iterations checkpointing every
     iteration, then "crash" (drop everything on the floor). *)
  let env1, policy1 = fresh_setup ~faults () in
  let first =
    Trainer.train
      (train_config ~checkpoint_path:path ~checkpoint_every:1
         ~iterations:kill_after ())
      env1 policy1 ~ops:small_ops
  in
  (* Phase 2: fresh process state, resume from the checkpoint. *)
  let env2, policy2 = fresh_setup ~faults () in
  let rest =
    Trainer.train ~resume:true
      (train_config ~checkpoint_path:path ~checkpoint_every:1 ~iterations ())
      env2 policy2 ~ops:small_ops
  in
  cleanup path;
  (List.map stats_key first @ List.map stats_key rest, Policy.params policy2)

let check_identical ~faults () =
  let iterations = 6 and kill_after = 3 in
  let straight, w_straight = run_straight ~faults ~iterations () in
  let resumed, w_resumed = run_interrupted ~faults ~iterations ~kill_after () in
  Alcotest.(check int) "same number of iteration stats" iterations
    (List.length resumed);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string) (Printf.sprintf "iteration %d stats" (i + 1)) a b)
    (List.combine straight resumed);
  Alcotest.(check bool) "final weights identical" true
    (Serialize.params_equal w_straight w_resumed)

let test_resume_identical_clean () = check_identical ~faults:false ()
let test_resume_identical_faulty () = check_identical ~faults:true ()

let test_resume_missing_checkpoint_starts_fresh () =
  let path = tmp_prefix "missing" in
  cleanup path;
  let env, policy = fresh_setup () in
  let stats =
    Trainer.train ~resume:true
      (train_config ~checkpoint_path:path ~iterations:2 ())
      env policy ~ops:small_ops
  in
  Alcotest.(check int) "ran from scratch" 2 (List.length stats);
  cleanup path

let test_resume_without_path_rejected () =
  let env, policy = fresh_setup () in
  Alcotest.check_raises "resume without checkpoint_path"
    (Invalid_argument "Trainer: resume requested without a checkpoint_path")
    (fun () ->
      ignore
        (Trainer.train ~resume:true
           (train_config ~iterations:1 ())
           env policy ~ops:small_ops))

let test_checkpoint_files_written () =
  let path = tmp_prefix "files" in
  cleanup path;
  let env, policy = fresh_setup () in
  ignore
    (Trainer.train
       (train_config ~checkpoint_path:path ~checkpoint_every:2 ~iterations:3 ())
       env policy ~ops:small_ops);
  List.iter
    (fun ext ->
      Alcotest.(check bool) (ext ^ " written") true (Sys.file_exists (path ^ ext)))
    [ ".meta"; ".params"; ".optim" ];
  (match Checkpoint.load_meta ~path with
  | Error e -> Alcotest.fail e
  | Ok m ->
      (* checkpoint_every=2 over 3 iterations: saved at 2 and at the
         final iteration. *)
      Alcotest.(check int) "meta records last iteration" 3 m.Checkpoint.iteration);
  cleanup path

let suite =
  [
    Alcotest.test_case "meta roundtrip" `Quick test_meta_roundtrip;
    Alcotest.test_case "corrupt meta rejected" `Quick test_restore_rejects_garbage;
    Alcotest.test_case "optimizer state roundtrip" `Quick test_optim_state_roundtrip;
    Alcotest.test_case "kill+resume = straight run (clean)" `Slow
      test_resume_identical_clean;
    Alcotest.test_case "kill+resume = straight run (faulty backend)" `Slow
      test_resume_identical_faulty;
    Alcotest.test_case "resume with no checkpoint starts fresh" `Quick
      test_resume_missing_checkpoint_starts_fresh;
    Alcotest.test_case "resume without path rejected" `Quick
      test_resume_without_path_rejected;
    Alcotest.test_case "checkpoint files written" `Quick
      test_checkpoint_files_written;
  ]
