(* The memoized evaluation pipeline: structural nest digests, the
   evaluator's state-seconds transposition cache, and prefix-sharing
   exhaustive search.

   The load-bearing properties, each pinned here:
   - the digest maintained incrementally across [Sched_state.apply]
     equals a from-scratch [Loop_nest.digest] of the current nest, on
     every state the candidate streams can reach (including im2col);
   - distinct nests get distinct digests (checked exhaustively over the
     search states of several ops, and probabilistically over random
     shapes) while renamed copies of one nest share a digest;
   - [Auto_scheduler.search] (prefix-sharing DFS + transposition cache)
     is bit-identical to [Auto_scheduler.search_naive] with caching
     disabled: same best schedule, best speedup, explored count, trace
     and noise-stream consumption, exhaustive and sampled branches both;
   - the sampling seed derives from [Linalg.digest], so same-named ops
     with different shapes draw different candidate streams;
   - the serve result-cache key distinguishes same-named ops with
     different shapes, and cached replies stay byte-identical. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Exact float equality: the differential contract is bit-identity, not
   closeness. *)
let check_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

(* ------------------------------------------------------------------ *)
(* Digest soundness                                                   *)
(* ------------------------------------------------------------------ *)

(* Walk a candidate schedule step by step from [init], checking the
   incremental-digest invariant on every intermediate state. *)
let check_stepwise op sched =
  let st = ref (Sched_state.init op) in
  check_str "init digest is from-scratch"
    (Loop_nest.digest !st.Sched_state.nest)
    (Sched_state.digest !st);
  List.iter
    (fun tr ->
      match Sched_state.apply !st tr with
      | Error _ -> ()
      | Ok st' ->
          st := st';
          check_str
            (Printf.sprintf "digest after %s"
               (Schedule.to_string !st.Sched_state.applied))
            (Loop_nest.digest st'.Sched_state.nest)
            (Sched_state.digest st'))
    sched

let test_incremental_digest_equals_scratch () =
  let config = Auto_scheduler.default_config in
  List.iter
    (fun op ->
      Seq.iter
        (fun sched -> check_stepwise op sched)
        (Seq.take 300 (Auto_scheduler.candidates config op)))
    [ Test_helpers.small_matmul (); Test_helpers.small_conv () ]

let test_digest_name_invariant_structure_sensitive () =
  let nest = Lower.to_loop_nest (Test_helpers.small_matmul ()) in
  let d = Loop_nest.digest nest in
  check_str "renaming the nest keeps the digest" d
    (Loop_nest.digest (Loop_nest.rename "something_else" nest));
  let bumped_ub =
    {
      nest with
      Loop_nest.loops =
        Array.mapi
          (fun i l ->
            if i = 0 then { l with Loop_nest.ub = l.Loop_nest.ub + 1 } else l)
          nest.Loop_nest.loops;
    }
  in
  check "changing a trip count changes the digest" true
    (d <> Loop_nest.digest bumped_ub);
  let kinded =
    {
      nest with
      Loop_nest.loops =
        Array.mapi
          (fun i l ->
            if i = 0 then { l with Loop_nest.kind = Loop_nest.Parallel } else l)
          nest.Loop_nest.loops;
    }
  in
  check "changing a loop kind changes the digest" true
    (d <> Loop_nest.digest kinded);
  let renamed_buffer =
    {
      nest with
      Loop_nest.buffers =
        List.map
          (fun (b, s) -> ((if b = "A" then "A2" else b), s))
          nest.Loop_nest.buffers;
    }
  in
  check "renaming a buffer (aliasing) changes the digest" true
    (d <> Loop_nest.digest renamed_buffer);
  let bumped_init =
    {
      nest with
      Loop_nest.inits =
        List.map (fun (b, v) -> (b, v +. 1.0)) nest.Loop_nest.inits;
    }
  in
  check "changing an init value changes the digest" true
    (d <> Loop_nest.digest bumped_init)

(* Exhaustive collision check over every state the search visits for a
   few ops: equal digests must mean equal structure (compare the
   pretty-printed nests under one name, since names are not hashed). *)
let test_digest_collision_free_over_search_states () =
  let seen : (string, string) Hashtbl.t = Hashtbl.create 512 in
  let states = ref 0 in
  let probe (st : Sched_state.t) =
    incr states;
    let d = Sched_state.digest st in
    let printed =
      Ir_printer.to_string (Loop_nest.rename "n" st.Sched_state.nest)
    in
    match Hashtbl.find_opt seen d with
    | None -> Hashtbl.replace seen d printed
    | Some other -> check_str "digest collision implies equal nests" other printed
  in
  let config = Auto_scheduler.default_config in
  List.iter
    (fun op ->
      Seq.iter
        (fun sched ->
          let st = ref (Sched_state.init op) in
          probe !st;
          List.iter
            (fun tr ->
              match Sched_state.apply !st tr with
              | Error _ -> ()
              | Ok st' ->
                  st := st';
                  probe st')
            sched)
        (Seq.take 400 (Auto_scheduler.candidates config op)))
    [
      Test_helpers.small_matmul ();
      Test_helpers.small_conv ();
      Test_helpers.small_maxpool ();
    ];
  check "visited a meaningful number of states" true (!states > 500)

let qcheck_digest_distinct_shapes =
  QCheck.Test.make ~name:"distinct matmul shapes get distinct nest digests"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         let dim = int_range 1 24 in
         tup2 (tup3 dim dim dim) (tup3 dim dim dim)))
    (fun ((m1, n1, k1), (m2, n2, k2)) ->
      let d1 =
        Loop_nest.digest
          (Lower.to_loop_nest (Linalg.matmul ~name:"op" ~m:m1 ~n:n1 ~k:k1 ()))
      in
      let d2 =
        Loop_nest.digest
          (Lower.to_loop_nest (Linalg.matmul ~name:"op" ~m:m2 ~n:n2 ~k:k2 ()))
      in
      if (m1, n1, k1) = (m2, n2, k2) then d1 = d2 else d1 <> d2)

(* ------------------------------------------------------------------ *)
(* Evaluator state-seconds transposition cache                        *)
(* ------------------------------------------------------------------ *)

let vectorized_state op =
  match Sched_state.apply (Sched_state.init op) Schedule.Vectorize with
  | Ok st -> st
  | Error e -> Alcotest.failf "vectorize failed: %s" e

let test_state_cache_hits_and_stats () =
  let ev = Evaluator.create () in
  let st = vectorized_state (Test_helpers.small_matmul ()) in
  let s1 = Evaluator.state_seconds ev st in
  let s2 = Evaluator.state_seconds ev st in
  check_bits "repeat evaluation returns the same seconds" s1 s2;
  (match (Evaluator.cache_stats ev).Evaluator.state with
  | None -> Alcotest.fail "state cache should be on by default"
  | Some s ->
      check_int "one miss" 1 s.Util.Sharded_cache.misses;
      check_int "one hit" 1 s.Util.Sharded_cache.hits);
  check_int "explored counts logical calls, hits included" 2
    (Evaluator.explored ev);
  let off = Evaluator.create ~state_cache_capacity:0 () in
  check "capacity 0 disables the state cache" true
    ((Evaluator.cache_stats off).Evaluator.state = None);
  check_bits "cached and uncached values agree" s1
    (Evaluator.state_seconds off st)

let test_state_cache_shared_across_forks () =
  let ev = Evaluator.create () in
  let st = vectorized_state (Test_helpers.small_matmul ()) in
  let f = Evaluator.fork ev in
  ignore (Evaluator.state_seconds f st);
  ignore (Evaluator.state_seconds ev st);
  match (Evaluator.cache_stats ev).Evaluator.state with
  | None -> Alcotest.fail "state cache missing"
  | Some s ->
      check_int "fork's miss visible through parent" 1
        s.Util.Sharded_cache.misses;
      check_int "parent hit the fork's entry" 1 s.Util.Sharded_cache.hits

let test_noise_stream_identical_cache_on_off () =
  let mk cap = Evaluator.create ~noise:0.05 ~noise_seed:7 ~state_cache_capacity:cap () in
  let on = mk 4096 and off = mk 0 in
  let ops =
    [ Test_helpers.small_matmul (); Test_helpers.small_conv () ]
  in
  (* Repeats included: the cached path must draw jitter exactly like
     the computing path. *)
  let states = List.concat_map (fun op -> [ vectorized_state op ]) ops in
  let states = states @ states @ states in
  List.iter
    (fun st ->
      check_bits "jittered speedup identical with cache on/off"
        (Evaluator.speedup on st) (Evaluator.speedup off st))
    states

(* ------------------------------------------------------------------ *)
(* Differential search equivalence                                    *)
(* ------------------------------------------------------------------ *)

let check_same_result name (a : Auto_scheduler.result)
    (b : Auto_scheduler.result) =
  check_str (name ^ ": best schedule")
    (Schedule.to_string a.Auto_scheduler.best_schedule)
    (Schedule.to_string b.Auto_scheduler.best_schedule);
  check_bits (name ^ ": best speedup") a.Auto_scheduler.best_speedup
    b.Auto_scheduler.best_speedup;
  check_int (name ^ ": explored") a.Auto_scheduler.explored
    b.Auto_scheduler.explored;
  check_int (name ^ ": trace length")
    (Array.length a.Auto_scheduler.trace)
    (Array.length b.Auto_scheduler.trace);
  Array.iteri
    (fun i (n, s) ->
      let n', s' = b.Auto_scheduler.trace.(i) in
      check_int (Printf.sprintf "%s: trace point %d index" name i) n n';
      check_bits (Printf.sprintf "%s: trace point %d speedup" name i) s s')
    a.Auto_scheduler.trace

let differential ?noise ?(budget = 20000) op =
  let mk cap =
    Evaluator.create ?noise ~noise_seed:11 ~state_cache_capacity:cap ()
  in
  let config =
    { Auto_scheduler.default_config with Auto_scheduler.max_schedules = budget }
  in
  let naive_ev = mk 0 in
  let naive = Auto_scheduler.search_naive ~config naive_ev op in
  let memo_ev = mk 65536 in
  let memo = Auto_scheduler.search ~config memo_ev op in
  check_same_result op.Linalg.op_name naive memo;
  check_int (op.Linalg.op_name ^ ": evaluator explored (jitter stream length)")
    (Evaluator.explored naive_ev) (Evaluator.explored memo_ev)

let test_differential_exhaustive () =
  differential (Test_helpers.small_matmul ());
  differential (Test_helpers.small_maxpool ())

let test_differential_exhaustive_im2col () =
  differential (Test_helpers.small_conv ())

let test_differential_exhaustive_noisy () =
  (* Noise makes any divergence in evaluation order or count visible as
     a jitter-stream shift: every subsequent value would differ. *)
  differential ~noise:0.05 (Test_helpers.small_matmul ());
  differential ~noise:0.05 (Test_helpers.small_conv ())

let test_differential_sampled_branch () =
  (* A space far over budget forces the seeded-sampling fallback in
     both implementations; they must share the RNG stream too. *)
  differential ~budget:60 (Linalg.matmul ~m:64 ~n:64 ~k:64 ());
  differential ~noise:0.03 ~budget:60 (Linalg.matmul ~m:64 ~n:64 ~k:64 ())

let test_search_deterministic () =
  let op = Linalg.matmul ~m:64 ~n:64 ~k:64 () in
  let run () =
    let ev = Evaluator.create () in
    Auto_scheduler.search
      ~config:
        { Auto_scheduler.default_config with Auto_scheduler.max_schedules = 50 }
      ev op
  in
  check_same_result "repeat run" (run ()) (run ())

let test_sampling_seed_from_shape () =
  let a = Linalg.matmul ~name:"mm" ~m:32 ~n:32 ~k:32 () in
  let b = Linalg.matmul ~name:"mm" ~m:64 ~n:64 ~k:64 () in
  check_int "seed pinned to Hashtbl.hash (Linalg.digest op)"
    (Hashtbl.hash (Linalg.digest a))
    (Auto_scheduler.sampling_seed a);
  check "same-named ops with different shapes get different seeds" true
    (Auto_scheduler.sampling_seed a <> Auto_scheduler.sampling_seed b);
  check "same op always gets the same seed" true
    (Auto_scheduler.sampling_seed a = Auto_scheduler.sampling_seed a)

(* Beam search rides the same caches without a dedicated DFS (its
   expansion is already incremental): results must not move when the
   transposition cache is enabled. *)
let test_beam_identical_with_cache () =
  let op = Linalg.matmul ~m:32 ~n:32 ~k:32 () in
  let run cap =
    Beam_search.search (Evaluator.create ~state_cache_capacity:cap ()) op
  in
  let off = run 0 and on = run 65536 in
  check_str "beam best schedule"
    (Schedule.to_string off.Beam_search.best_schedule)
    (Schedule.to_string on.Beam_search.best_schedule);
  check_bits "beam best speedup" off.Beam_search.best_speedup
    on.Beam_search.best_speedup;
  check_int "beam explored" off.Beam_search.explored on.Beam_search.explored

(* ------------------------------------------------------------------ *)
(* Serve cache keys                                                   *)
(* ------------------------------------------------------------------ *)

let test_serve_digest_distinguishes_shapes () =
  let a = Linalg.matmul ~name:"mm" ~m:32 ~n:32 ~k:32 () in
  let b = Linalg.matmul ~name:"mm" ~m:64 ~n:64 ~k:64 () in
  check "same-named ops with different shapes get different cache keys"
    true
    (Serve.Engine.nest_digest a <> Serve.Engine.nest_digest b);
  check_str "renamed copies of one op share a cache key"
    (Serve.Engine.nest_digest a)
    (Serve.Engine.nest_digest (Linalg.matmul ~name:"other" ~m:32 ~n:32 ~k:32 ()))

let test_serve_engine_replies_identical_across_cache () =
  match
    Serve.Engine.create
      { Serve.Engine.default_config with Serve.Engine.hidden = 16 }
  with
  | Error e -> Alcotest.failf "engine: %s" e
  | Ok engine ->
      let ops = [| Test_helpers.small_matmul (); Test_helpers.small_conv () |] in
      let render r =
        match r with
        | Ok (o : Serve.Engine.outcome) ->
            Printf.sprintf "%s|%.17g" o.Serve.Engine.schedule
              o.Serve.Engine.speedup
        | Error _ -> "error"
      in
      let first = Array.map render (Serve.Engine.solve_batch engine ops) in
      let second = Array.map render (Serve.Engine.solve_batch engine ops) in
      Array.iteri
        (fun i a -> check_str "cached reply identical to computed" a second.(i))
        first;
      check "second batch hit the result cache" true
        (Serve.Engine.cache_hits engine >= 2);
      let eval = Serve.Engine.evaluator_cache_stats engine in
      check "engine surfaces evaluator cache stats" true
        (match eval.Evaluator.state with
        | Some s -> s.Util.Sharded_cache.misses > 0
        | None -> false)

let suite =
  [
    Alcotest.test_case "incremental digest = from-scratch" `Quick
      test_incremental_digest_equals_scratch;
    Alcotest.test_case "digest ignores names, sees structure" `Quick
      test_digest_name_invariant_structure_sensitive;
    Alcotest.test_case "no collisions across search states" `Quick
      test_digest_collision_free_over_search_states;
    QCheck_alcotest.to_alcotest qcheck_digest_distinct_shapes;
    Alcotest.test_case "state cache: hits, stats, disable knob" `Quick
      test_state_cache_hits_and_stats;
    Alcotest.test_case "state cache shared across forks" `Quick
      test_state_cache_shared_across_forks;
    Alcotest.test_case "noise stream identical cache on/off" `Quick
      test_noise_stream_identical_cache_on_off;
    Alcotest.test_case "differential: exhaustive" `Quick
      test_differential_exhaustive;
    Alcotest.test_case "differential: exhaustive with im2col" `Quick
      test_differential_exhaustive_im2col;
    Alcotest.test_case "differential: exhaustive, noisy evaluator" `Quick
      test_differential_exhaustive_noisy;
    Alcotest.test_case "differential: sampled branch" `Quick
      test_differential_sampled_branch;
    Alcotest.test_case "search is deterministic" `Quick
      test_search_deterministic;
    Alcotest.test_case "sampling seed derives from op digest" `Quick
      test_sampling_seed_from_shape;
    Alcotest.test_case "beam search identical with cache" `Quick
      test_beam_identical_with_cache;
    Alcotest.test_case "serve digest distinguishes shapes" `Quick
      test_serve_digest_distinguishes_shapes;
    Alcotest.test_case "serve replies identical across cache" `Quick
      test_serve_engine_replies_identical_across_cache;
  ]
