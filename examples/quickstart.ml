(* Quickstart: build a Linalg op, apply a schedule, inspect the loop
   nest, and estimate the speedup on the paper's Xeon.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A 1024x1024x1024 matrix multiplication, like the paper's Matmul
     benchmarks. *)
  let op = Linalg.matmul ~m:1024 ~n:1024 ~k:1024 () in
  Format.printf "=== The operation ===@.%a@.@." Linalg.pp op;

  (* 2. Its canonical (untransformed) loop nest. *)
  let nest = Lower.to_loop_nest op in
  Format.printf "=== Canonical loop nest ===@.%s@.@." (Ir_printer.to_string nest);

  (* 3. A schedule in the paper's notation: parallel-tile the two outer
     loops, tile again for cache locality, move the reduction off the
     innermost position, vectorize. *)
  let schedule =
    match Schedule.of_string "P(64,64,0) T(8,64,64) S(1) V" with
    | Ok s -> s
    | Error e -> failwith e
  in
  Format.printf "=== Schedule: %s ===@." (Schedule.to_string schedule);
  let state =
    match Sched_state.apply_all op schedule with
    | Ok st -> st
    | Error e -> failwith e
  in
  Format.printf "%s@.@." (Ir_printer.to_string state.Sched_state.nest);

  (* 4. Estimated execution times from the performance model. *)
  let evaluator = Evaluator.create () in
  let base = Evaluator.base_seconds evaluator op in
  let speedup = Evaluator.speedup evaluator state in
  Format.printf "=== Performance estimate (%s) ===@."
    (Evaluator.machine evaluator).Machine.name;
  Format.printf "base time      : %.4f s@." base;
  Format.printf "scheduled time : %.6f s@." (base /. speedup);
  Format.printf "speedup        : %.1fx@.@." speedup;

  (* 5. Correctness: the transformed nest computes the same result. The
     interpreter executes both on random inputs. *)
  let small = Linalg.matmul ~m:16 ~n:16 ~k:16 () in
  let small_sched =
    match Schedule.of_string "P(4,4,0) T(2,2,4) S(1) V" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let small_state = Result.get_ok (Sched_state.apply_all small small_sched) in
  let rng = Util.Rng.create 42 in
  let inputs =
    [
      ("A", Array.init 256 (fun _ -> Util.Rng.gaussian rng));
      ("B", Array.init 256 (fun _ -> Util.Rng.gaussian rng));
    ]
  in
  let reference = Linalg.execute_reference small inputs in
  let transformed =
    Interp.output_of small_state.Sched_state.nest
      (Interp.run small_state.Sched_state.nest ~inputs)
  in
  let max_err =
    Array.fold_left Float.max 0.0
      (Array.mapi (fun i v -> Float.abs (v -. reference.(i))) transformed)
  in
  Format.printf "=== Semantics check (16x16x16 instance) ===@.";
  Format.printf "max |transformed - reference| = %g@." max_err;
  assert (max_err < 1e-6);
  Format.printf "OK: the schedule preserves the computation.@."
