(* Train a Multi-Action PPO agent on matrix multiplications and watch it
   learn to emit good schedules (a scaled-down version of the paper's
   training loop, with the paper's PPO hyperparameters but a smaller
   network so it runs in about a minute on one core).

   Run with: dune exec examples/train_matmul_agent.exe *)

let () =
  let cfg = Env_config.default in
  let env = Env.create cfg in
  let rng = Util.Rng.create 2026 in
  let policy = Policy.create ~hidden:64 ~backbone_layers:2 rng cfg in
  Format.printf "policy parameters: %d@.@." (Policy.param_count policy);

  (* A small pool of matmuls of different shapes. *)
  let ops =
    [|
      Linalg.matmul ~m:512 ~n:512 ~k:512 ();
      Linalg.matmul ~m:1024 ~n:256 ~k:512 ();
      Linalg.matmul ~m:256 ~n:1024 ~k:1024 ();
    |]
  in
  let config = { Trainer.default_config with Trainer.iterations = 25; seed = 1 } in
  Format.printf "training %d iterations x %d steps (Final reward, hierarchical space)@.@."
    config.Trainer.iterations config.Trainer.ppo.Ppo.batch_size;
  let _ =
    Trainer.train config env policy ~ops ~callback:(fun s ->
        if s.Trainer.iteration mod 5 = 0 || s.Trainer.iteration = 1 then
          Format.printf
            "iter %3d | mean return %7.3f | geomean episode speedup %9.2fx | best %9.1fx@."
            s.Trainer.iteration s.Trainer.mean_episode_return
            s.Trainer.mean_final_speedup s.Trainer.best_speedup)
  in
  Format.printf "@.greedy inference on a held-out shape:@.";
  let test_op = Linalg.matmul ~m:512 ~n:1024 ~k:256 () in
  let sched, speedup = Trainer.greedy_rollout env policy test_op in
  Format.printf "  %s@.  schedule: %s@.  speedup : %.1fx@.@." test_op.Linalg.op_name
    (Schedule.to_string sched) speedup;
  let sched_s, speedup_s = Trainer.sampled_best rng env policy test_op ~trials:16 in
  Format.printf "best of 16 sampled rollouts: %s (%.1fx)@."
    (Schedule.to_string sched_s) speedup_s;
  let auto = Auto_scheduler.search (Env.evaluator env) test_op in
  Format.printf "auto-scheduler reference  : %s (%.1fx, %d schedules)@."
    (Schedule.to_string auto.Auto_scheduler.best_schedule)
    auto.Auto_scheduler.best_speedup auto.Auto_scheduler.explored
