(* Auto-scheduling a ResNet-style convolution: run the paper's baseline
   exhaustive auto-scheduler (§5.1.4) on a realistic conv layer, compare
   against the simulated TensorFlow kernels, and show the im2col
   trade-off.

   Run with: dune exec examples/autoschedule_conv.exe *)

let () =
  (* conv3_x-style layer of ResNet-50 at batch 1 *)
  let conv =
    Linalg.conv2d
      {
        Linalg.batch = 1;
        in_h = 58;
        in_w = 58;
        channels = 128;
        kernel_h = 3;
        kernel_w = 3;
        filters = 128;
        stride = 1;
      }
  in
  let evaluator = Evaluator.create () in
  let base = Evaluator.base_seconds evaluator conv in
  Format.printf "operation : %s@." conv.Linalg.op_name;
  Format.printf "base time : %.4f s (untransformed, single thread)@.@." base;

  (* The paper's baseline: exhaustive exploration, tile sizes <= 64, at
     least two tiled loops. *)
  let result = Auto_scheduler.search evaluator conv in
  Format.printf "auto-scheduler explored %d schedules@." result.Auto_scheduler.explored;
  Format.printf "best schedule : %s@."
    (Schedule.to_string result.Auto_scheduler.best_schedule);
  Format.printf "best speedup  : %.1fx (%.6f s)@.@." result.Auto_scheduler.best_speedup
    (base /. result.Auto_scheduler.best_speedup);

  (* How fast did the search converge? (the Figure 6 curve) *)
  Format.printf "convergence (explored -> best-so-far speedup):@.";
  let checkpoints = [ 1; 10; 50; 100; 500; 1000; result.Auto_scheduler.explored ] in
  Array.iter
    (fun (i, sp) ->
      if List.mem i checkpoints then Format.printf "  %5d -> %8.1fx@." i sp)
    result.Auto_scheduler.trace;
  Format.printf "@.";

  (* Direct vs im2col: compare the best candidate of each family. *)
  let direct_cfg =
    { Auto_scheduler.default_config with Auto_scheduler.include_im2col = false }
  in
  let direct = Auto_scheduler.search ~config:direct_cfg evaluator conv in
  Format.printf "best direct schedule : %s (%.1fx)@."
    (Schedule.to_string direct.Auto_scheduler.best_schedule)
    direct.Auto_scheduler.best_speedup;
  let used_im2col = List.mem Schedule.Im2col result.Auto_scheduler.best_schedule in
  Format.printf "im2col in overall best: %b@.@." used_im2col;

  (* TensorFlow comparison (synthetic comparator, see DESIGN.md). *)
  let tf = Tf_baseline.tf_seconds evaluator conv in
  let tf_jit = Tf_baseline.tf_jit_seconds evaluator conv in
  Format.printf "TensorFlow      : %.6f s (%.1fx over base)@." tf (base /. tf);
  Format.printf "TensorFlow JIT  : %.6f s (%.1fx over base)@." tf_jit (base /. tf_jit);
  let best_time = base /. result.Auto_scheduler.best_speedup in
  Format.printf "auto-scheduler vs TF: %.2fx@." (tf /. best_time)
