(* Feature-extraction walkthrough: the paper's Figure 1 pipeline and
   Figure 2 access matrices, shown live on a convolution as a schedule
   is applied step by step.

   Run with: dune exec examples/inspect_features.exe *)

let cfg = Env_config.default

let print_matrix title (op : Linalg.operand) state =
  let n = cfg.Env_config.n_max in
  let flat = Observation.access_matrix cfg state op in
  Format.printf "  %s (%s, rows = array dims, cols = loops + const):@." title
    op.Linalg.name;
  for row = 0 to cfg.Env_config.d_max - 1 do
    Format.printf "    [";
    for col = 0 to n do
      (* undo the 1/4 feature scaling for display *)
      Format.printf " %3.0f" (flat.((row * (n + 1)) + col) *. 4.0)
    done;
    Format.printf " ]@."
  done

let describe step state =
  Format.printf "--- after %s ---@."
    (match step with
    | None -> "reset (no transformation)"
    | Some tr -> Schedule.transformation_name tr ^ " (" ^ Schedule.to_string [ tr ] ^ ")");
  let info = Observation.loop_info cfg state in
  Format.printf "  loop info (log2 trip / 16): [%s]@."
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.3f") info)));
  let op = state.Sched_state.op in
  Array.iter (fun o -> print_matrix "load access matrix" o state) op.Linalg.inputs;
  print_matrix "store access matrix" op.Linalg.output state;
  let counts = Linalg.math_op_counts op in
  Format.printf "  math ops (add sub mul div exp log): [%s]@."
    (String.concat "; " (Array.to_list (Array.map string_of_int counts)));
  let obs = Observation.extract cfg state in
  Format.printf "  full observation vector: %d floats (Table 1)@.@."
    (Array.length obs)

let () =
  let conv =
    Linalg.conv2d
      {
        Linalg.batch = 1;
        in_h = 58;
        in_w = 58;
        channels = 64;
        kernel_h = 3;
        kernel_w = 3;
        filters = 128;
        stride = 2;
      }
  in
  Format.printf "Feature extraction for %s@.@." conv.Linalg.op_name;
  let state = ref (Sched_state.init conv) in
  describe None !state;
  let steps =
    [
      Schedule.Swap 2;
      (* point order is now (n, oh, f, ow, kh, kw, c) *)
      Schedule.Tile [| 0; 7; 16; 7; 0; 0; 16 |];
      Schedule.Vectorize;
    ]
  in
  List.iter
    (fun tr ->
      match Sched_state.apply !state tr with
      | Ok st ->
          state := st;
          describe (Some tr) st
      | Error e -> Format.printf "  step rejected: %s@." e)
    steps;
  Format.printf "History tensor (N x 3 x tau) now encodes the schedule %s@."
    (Schedule.to_string !state.Sched_state.applied)
