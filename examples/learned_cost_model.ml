(* The learned cost model (paper §6.1 future work): train an MLP to
   predict log speedups from the environment's observation vector, then
   use it to pre-rank candidate schedules so only the most promising few
   reach the (expensive) timing oracle.

   Run with: dune exec examples/learned_cost_model.exe *)

let () =
  let cfg = Env_config.default in
  let rng = Util.Rng.create 11 in
  let evaluator = Evaluator.create () in
  let ops =
    Array.init 24 (fun i ->
        Generator.random_op
          (Util.Rng.create (100 + i))
          [| "matmul"; "conv2d"; "maxpool"; "add"; "relu" |].(i mod 5))
  in
  Format.printf "collecting measured schedules on %d ops...@." (Array.length ops);
  let train_data = Learned_cost.collect ~samples:512 rng cfg evaluator ~ops in
  let test_data = Learned_cost.collect ~samples:96 rng cfg evaluator ~ops in
  let model = Learned_cost.create ~hidden:96 ~layers:2 rng cfg in
  let report = Learned_cost.fit ~epochs:50 model train_data in
  Format.printf "regression: MSE %.3f -> %.3f after %d epochs@."
    report.Learned_cost.initial_loss report.Learned_cost.final_loss
    report.Learned_cost.epochs_run;
  Format.printf "held-out rank correlation: %.3f@.@."
    (Learned_cost.rank_correlation model test_data);

  (* Use the model as a pre-filter: rank 200 random candidate schedules
     for a fresh matmul, measure only the model's top 10. *)
  let op = Linalg.matmul ~m:768 ~n:768 ~k:768 () in
  let candidate_rng = Util.Rng.create 77 in
  let candidates =
    List.init 200 (fun _ ->
        let state = ref (Sched_state.init op) in
        (* random legal episodes, like Learned_cost.collect *)
        let cfg_tau = cfg.Env_config.tau in
        (try
           for _ = 1 to 1 + Util.Rng.int candidate_rng cfg_tau do
             if Sched_state.is_done !state then raise Exit;
             let masks = Action_space.masks cfg !state in
             let valid =
               List.filter
                 (fun i -> masks.Action_space.t_mask.(i))
                 (List.init Env_config.n_transformations (fun i -> i))
             in
             let transform = Util.Rng.choice_list candidate_rng valid in
             let rows =
               if transform = Action_space.t_parallelize then
                 masks.Action_space.par_mask
               else masks.Action_space.tile_mask
             in
             let pick row =
               Util.Rng.choice_list candidate_rng
                 (List.filter (fun j -> row.(j))
                    (List.init (Array.length row) (fun j -> j)))
             in
             let action =
               {
                 Action_space.transform;
                 tile_choices = Array.init cfg.Env_config.n_max (fun l -> pick rows.(l));
                 swap_choice =
                   (match
                      List.filter
                        (fun j -> masks.Action_space.swap_mask.(j))
                        (List.init cfg.Env_config.n_max (fun j -> j))
                    with
                   | [] -> 0
                   | l -> Util.Rng.choice_list candidate_rng l);
               }
             in
             match Action_space.to_transformation cfg !state action with
             | None -> ()
             | Some tr -> (
                 match Sched_state.apply !state tr with
                 | Ok st -> state := st
                 | Error _ -> ())
           done
         with Exit -> ());
        !state)
  in
  let scored =
    List.map (fun st -> (Learned_cost.predict_speedup model st, st)) candidates
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) scored in
  let top = List.filteri (fun i _ -> i < 10) sorted in
  Evaluator.reset_explored evaluator;
  let best =
    List.fold_left
      (fun acc (_, st) -> Float.max acc (Evaluator.speedup evaluator st))
      0.0 top
  in
  let truly_best =
    List.fold_left
      (fun acc st -> Float.max acc (Evaluator.speedup evaluator st))
      0.0 candidates
  in
  Format.printf
    "model-guided: measured only 10/200 candidates, best found %.1fx@." best;
  Format.printf "oracle over all 200 candidates: %.1fx@." truly_best;
  Format.printf "=> the learned model recovers %.0f%% of the attainable speedup@."
    (100.0 *. best /. truly_best)
