(* End-to-end: optimize every operation of a small convolutional network
   (the workload the paper's introduction motivates) with the beam
   scheduler, fuse its elementwise tails, and compare against the
   simulated TensorFlow kernels.

   Run with: dune exec examples/optimize_model.exe *)

type layer = { label : string; op : Linalg.t }

let fused_bias_relu shape =
  let producer = Linalg.bias_add shape in
  let consumer = Linalg.relu shape in
  Result.get_ok (Fusion.fuse ~producer ~consumer ~consumer_input:0)

let build_model () =
  [
    {
      label = "conv1 3x3, 3->32";
      op =
        Linalg.conv2d
          { Linalg.batch = 1; in_h = 34; in_w = 34; channels = 3; kernel_h = 3;
            kernel_w = 3; filters = 32; stride = 1 };
    };
    { label = "bias+relu 1 (fused)"; op = fused_bias_relu [| 1; 32; 32; 32 |] };
    {
      label = "maxpool 2x2";
      op =
        Linalg.maxpool
          { Linalg.p_batch = 1; p_in_h = 32; p_in_w = 32; p_channels = 32;
            p_kernel = 2; p_stride = 2 };
    };
    {
      label = "conv2 3x3, 32->64";
      op =
        Linalg.conv2d
          { Linalg.batch = 1; in_h = 16; in_w = 16; channels = 32; kernel_h = 3;
            kernel_w = 3; filters = 64; stride = 1 };
    };
    { label = "bias+relu 2 (fused)"; op = fused_bias_relu [| 1; 14; 14; 64 |] };
    {
      label = "avgpool 2x2";
      op =
        Linalg.avgpool
          { Linalg.p_batch = 1; p_in_h = 14; p_in_w = 14; p_channels = 64;
            p_kernel = 2; p_stride = 2 };
    };
    { label = "fc1 3136->512"; op = Linalg.matmul ~m:1 ~n:512 ~k:3136 () };
    { label = "fc1 bias+relu (fused)"; op = fused_bias_relu [| 1; 512 |] };
    { label = "fc2 512->10"; op = Linalg.matmul ~m:1 ~n:10 ~k:512 () };
  ]

let () =
  let evaluator = Evaluator.create () in
  let layers = build_model () in
  Format.printf "Optimizing a %d-layer CNN (batch 1) with the beam scheduler@.@."
    (List.length layers);
  Format.printf "%-24s %12s %12s %10s  %s@." "layer" "base (s)" "best (s)"
    "speedup" "schedule";
  let totals =
    List.fold_left
      (fun (base_total, best_total, tf_total) { label; op } ->
        let base = Evaluator.base_seconds evaluator op in
        let r = Beam_search.search evaluator op in
        let best = base /. r.Beam_search.best_speedup in
        let tf = Tf_baseline.tf_seconds evaluator op in
        Format.printf "%-24s %12.3e %12.3e %9.1fx  %s@." label base best
          r.Beam_search.best_speedup
          (Schedule.to_string r.Beam_search.best_schedule);
        (base_total +. base, best_total +. best, tf_total +. tf))
      (0.0, 0.0, 0.0) layers
  in
  let base_total, best_total, tf_total = totals in
  Format.printf "@.%-24s %12.3e@." "total, unoptimized" base_total;
  Format.printf "%-24s %12.3e (%.0fx end-to-end)@." "total, scheduled" best_total
    (base_total /. best_total);
  Format.printf "%-24s %12.3e@." "total, TensorFlow" tf_total;
  Format.printf "scheduled vs TensorFlow : %.2fx@." (tf_total /. best_total)
